// Parallel-explorer determinism: the work-stealing engine must produce the same
// outcome sets, violation flags, and (absent truncation) state/transition
// counts as the sequential engine, at every worker count, on every workload —
// the classics/paper suite and a seeded random-program corpus.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/arch/builder.h"
#include "src/litmus/batch.h"
#include "src/model/explorer.h"
#include "src/model/sc_machine.h"
#include "src/support/rng.h"

namespace vrm {
namespace {

std::vector<std::string> OutcomeKeys(const ExploreResult& result) {
  std::vector<std::string> keys;
  for (const auto& [key, outcome] : result.outcomes) {
    (void)outcome;
    keys.push_back(key);
  }
  return keys;  // std::map iteration is already key-sorted
}

std::tuple<bool, bool, bool, bool, bool> Flags(const ExploreResult& result) {
  const ConditionViolations& v = result.violations;
  return {v.drf.set, v.barrier.set, v.write_once.set, v.tlbi.set, v.isolation.set};
}

void ExpectSameBehaviour(const ExploreResult& sequential, const ExploreResult& parallel,
                         const std::string& label) {
  EXPECT_EQ(OutcomeKeys(sequential), OutcomeKeys(parallel)) << label;
  EXPECT_EQ(Flags(sequential), Flags(parallel)) << label;
  EXPECT_EQ(sequential.stats.truncated, parallel.stats.truncated) << label;
  if (!sequential.stats.truncated) {
    // Workers partition the unique states, so the summed counters must equal
    // the sequential engine's exactly.
    EXPECT_EQ(sequential.stats.states, parallel.stats.states) << label;
    EXPECT_EQ(sequential.stats.transitions, parallel.stats.transitions) << label;
  }
}

void ExpectDeterministicAcrossThreadCounts(const LitmusTest& test) {
  LitmusTest sequential = test;
  sequential.config.num_threads = 1;
  const ExploreResult sc1 = RunSc(sequential);
  const ExploreResult rm1 = RunPromising(sequential);
  for (int threads : {2, 4, 8}) {
    LitmusTest parallel = test;
    parallel.config.num_threads = threads;
    ExpectSameBehaviour(sc1, RunSc(parallel),
                        test.program.name + " SC @" + std::to_string(threads));
    ExpectSameBehaviour(rm1, RunPromising(parallel),
                        test.program.name + " RM @" + std::to_string(threads));
  }
}

TEST(ParallelExplore, DefaultSuiteDeterministicAcrossThreadCounts) {
  for (const LitmusTest& test : DefaultLitmusSuite()) {
    ExpectDeterministicAcrossThreadCounts(test);
  }
}

// Straight-line random programs: two threads, each a seeded mix of plain /
// acquire-release loads, stores, fetch-adds and barriers over two shared cells.
// No branches, so every program terminates and explores exhaustively. Kept
// small (2 threads x <= 4 instructions) so the Promising exploration of every
// seed stays sub-second even on one core: the corpus buys shape diversity, the
// classics/paper suite buys depth.
Program RandomProgram(uint64_t seed) {
  Rng rng(seed);
  ProgramBuilder pb("rand_" + std::to_string(seed));
  pb.MemSize(2);
  const int num_threads = 2;
  Reg next_obs_reg[3] = {0, 0, 0};
  for (int t = 0; t < num_threads; ++t) {
    auto& tb = pb.NewThread();
    const int len = 3 + static_cast<int>(rng.Below(2));
    for (int i = 0; i < len; ++i) {
      const Addr loc = static_cast<Addr>(rng.Below(2));
      const MemOrder order = rng.Chance(0.25)
                                 ? (rng.Chance(0.5) ? MemOrder::kAcquire : MemOrder::kRelease)
                                 : MemOrder::kPlain;
      switch (rng.Below(4)) {
        case 0:
          tb.StoreImm(loc, 1 + rng.Below(3), /*scratch=*/kAddrReg - 1,
                      order == MemOrder::kAcquire ? MemOrder::kPlain : order);
          break;
        case 1:
          if (next_obs_reg[t] < 3) {
            const Reg rd = next_obs_reg[t]++;
            tb.LoadAddr(rd, loc, order == MemOrder::kRelease ? MemOrder::kPlain : order);
            pb.ObserveReg(static_cast<ThreadId>(t), rd);
          } else {
            tb.LoadAddr(3, loc);
          }
          break;
        case 2:
          tb.FetchAddAddr(/*rd=*/4, loc, 1,
                          rng.Chance(0.5) ? MemOrder::kAcqRel : MemOrder::kPlain);
          break;
        default:
          tb.Dmb(rng.Chance(0.5) ? BarrierKind::kSy
                                 : (rng.Chance(0.5) ? BarrierKind::kLd : BarrierKind::kSt));
          break;
      }
    }
  }
  pb.ObserveLoc(0).ObserveLoc(1);
  return pb.Build();
}

TEST(ParallelExplore, RandomCorpusDeterministicAcrossThreadCounts) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    LitmusTest test{RandomProgram(seed), {}, "random corpus"};
    ExpectDeterministicAcrossThreadCounts(test);
  }
}

TEST(ParallelExplore, TruncatedRunStillReportsTruncation) {
  ProgramBuilder pb("cap_parallel");
  pb.MemSize(3);
  for (int i = 0; i < 3; ++i) {
    auto& t = pb.NewThread();
    t.StoreImm(static_cast<Addr>(i), 1, 1).StoreImm(static_cast<Addr>(i), 2, 1);
  }
  ModelConfig config;
  config.max_states = 5;
  config.num_threads = 4;
  ScMachine machine(pb.Build(), config);
  const ExploreResult result = Explore(machine, config);
  EXPECT_TRUE(result.stats.truncated);
  EXPECT_EQ(result.stats.stop_cause, StopCause::kStates);
}

// The overshoot regression: with a racy `Size() >= max_states` gate, four
// workers could each pass the check at size = cap-1 and expand cap+3 states.
// The atomic reservation must hold every worker count to the cap exactly, at
// every cap across the search's growth curve.
TEST(ParallelExplore, MaxStatesIsNeverOvershotAcrossWorkerCounts) {
  ProgramBuilder pb("cap_boundary");
  pb.MemSize(3);
  for (int i = 0; i < 3; ++i) {
    auto& t = pb.NewThread();
    t.StoreImm(static_cast<Addr>(i), 1, 1).StoreImm(static_cast<Addr>(i), 2, 1);
  }
  const Program program = pb.Build();
  // The workload has 27 unique states (each thread's PC determines its cell),
  // so every cap below stays truncating.
  for (uint64_t cap : {1u, 2u, 5u, 9u, 17u}) {
    for (int threads : {2, 4, 8}) {
      ModelConfig config;
      config.max_states = cap;
      config.num_threads = threads;
      ScMachine machine(program, config);
      const ExploreResult result = Explore(machine, config);
      EXPECT_LE(result.stats.states, cap)
          << "cap " << cap << " @" << threads << " workers";
      EXPECT_TRUE(result.stats.truncated)
          << "cap " << cap << " @" << threads << " workers";
      EXPECT_EQ(result.stats.stop_cause, StopCause::kStates)
          << "cap " << cap << " @" << threads << " workers";
    }
  }
}

TEST(ParallelExplore, BatchRunnerMatchesIndividualRuns) {
  std::vector<LitmusTest> suite = DefaultLitmusSuite();
  suite.resize(10);  // the classics prefix is plenty for wiring coverage
  const BatchResult batch = RunLitmusBatch(suite, 4);
  ASSERT_EQ(batch.entries.size(), suite.size());
  for (size_t i = 0; i < suite.size(); ++i) {
    const ExploreResult sc = RunSc(suite[i]);
    const ExploreResult rm = RunPromising(suite[i]);
    ExpectSameBehaviour(sc, batch.entries[i].sc, suite[i].program.name + " batch SC");
    ExpectSameBehaviour(rm, batch.entries[i].rm, suite[i].program.name + " batch RM");
    EXPECT_EQ(batch.entries[i].status.holds, RmRefinesSc(rm, sc)) << suite[i].program.name;
  }
  EXPECT_NE(batch.Summary().find("10 tests"), std::string::npos);
}

}  // namespace
}  // namespace vrm
