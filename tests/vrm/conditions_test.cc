// The Section 5 reproduction: KCore's primitives satisfy the wDRF conditions
// (and the deliberately broken variants do not), parameterized across the
// whole verified/unverified matrix.

#include "src/vrm/conditions.h"

#include <gtest/gtest.h>

#include <functional>

#include "src/arch/builder.h"
#include "src/sekvm/tinyarm_primitives.h"

namespace vrm {
namespace {

struct PrimitiveCase {
  const char* name;
  std::function<KernelSpec()> make;
  // Expected verdicts; kUnchecked for conditions the spec does not arm.
  enum Verdict { kHolds, kViolated, kUnchecked };
  Verdict drf;
  Verdict barrier;
  Verdict write_once;
  Verdict tlbi;
};

class WdrfConditions : public ::testing::TestWithParam<PrimitiveCase> {};

void ExpectVerdict(const WdrfReport& report, WdrfCondition condition,
                   PrimitiveCase::Verdict expected) {
  const ConditionVerdict& verdict = report.Verdict(condition);
  switch (expected) {
    case PrimitiveCase::kUnchecked:
      EXPECT_FALSE(verdict.checked) << ConditionName(condition);
      break;
    case PrimitiveCase::kHolds:
      EXPECT_TRUE(verdict.checked) << ConditionName(condition);
      EXPECT_TRUE(verdict.status.holds) << ConditionName(condition) << ": " << verdict.detail;
      break;
    case PrimitiveCase::kViolated:
      EXPECT_TRUE(verdict.checked) << ConditionName(condition);
      EXPECT_FALSE(verdict.status.holds) << ConditionName(condition)
                                  << " unexpectedly holds";
      break;
  }
}

TEST_P(WdrfConditions, PrimitiveMatrix) {
  const PrimitiveCase& c = GetParam();
  const WdrfReport report = CheckWdrf(c.make());
  ExpectVerdict(report, WdrfCondition::kDrfKernel, c.drf);
  ExpectVerdict(report, WdrfCondition::kNoBarrierMisuse, c.barrier);
  ExpectVerdict(report, WdrfCondition::kWriteOnceKernelMapping, c.write_once);
  ExpectVerdict(report, WdrfCondition::kSequentialTlbInvalidation, c.tlbi);
}

INSTANTIATE_TEST_SUITE_P(
    SeKvmPrimitives, WdrfConditions,
    ::testing::Values(
        // Figure 7's ticket lock: all armed conditions hold.
        PrimitiveCase{"gen_vmid", [] { return GenVmidKernelSpec(true); },
                      PrimitiveCase::kHolds, PrimitiveCase::kHolds,
                      PrimitiveCase::kUnchecked, PrimitiveCase::kUnchecked},
        // Without acquire/release, the lock misuses barriers.
        PrimitiveCase{"gen_vmid_unverified", [] { return GenVmidKernelSpec(false); },
                      PrimitiveCase::kHolds, PrimitiveCase::kViolated,
                      PrimitiveCase::kUnchecked, PrimitiveCase::kUnchecked},
        PrimitiveCase{"vcpu_context", [] { return VcpuContextKernelSpec(true); },
                      PrimitiveCase::kHolds, PrimitiveCase::kHolds,
                      PrimitiveCase::kUnchecked, PrimitiveCase::kUnchecked},
        PrimitiveCase{"vcpu_context_unverified",
                      [] { return VcpuContextKernelSpec(false); },
                      PrimitiveCase::kHolds, PrimitiveCase::kViolated,
                      PrimitiveCase::kUnchecked, PrimitiveCase::kUnchecked},
        PrimitiveCase{"clear_s2pt", [] { return ClearS2ptKernelSpec(true); },
                      PrimitiveCase::kUnchecked, PrimitiveCase::kUnchecked,
                      PrimitiveCase::kUnchecked, PrimitiveCase::kHolds},
        PrimitiveCase{"clear_s2pt_unverified",
                      [] { return ClearS2ptKernelSpec(false); },
                      PrimitiveCase::kUnchecked, PrimitiveCase::kUnchecked,
                      PrimitiveCase::kUnchecked, PrimitiveCase::kViolated},
        PrimitiveCase{"remap_pfn", [] { return RemapPfnKernelSpec(true); },
                      PrimitiveCase::kUnchecked, PrimitiveCase::kUnchecked,
                      PrimitiveCase::kHolds, PrimitiveCase::kUnchecked},
        PrimitiveCase{"remap_pfn_unverified",
                      [] { return RemapPfnKernelSpec(false); },
                      PrimitiveCase::kUnchecked, PrimitiveCase::kUnchecked,
                      PrimitiveCase::kViolated, PrimitiveCase::kUnchecked}),
    [](const ::testing::TestParamInfo<PrimitiveCase>& info) {
      return info.param.name;
    });

// Ablation: each half of the Figure 7 barrier discipline is necessary.
// NO-BARRIER-MISUSE fails whenever either the acquire loads or the release
// store is weakened to plain.
class LockStrengthSweep : public ::testing::TestWithParam<LockStrength> {};

TEST_P(LockStrengthSweep, BarrierConditionTracksStrength) {
  const WdrfReport report = CheckWdrf(GenVmidKernelSpecWithStrength(GetParam()));
  const bool expect_holds = GetParam() == LockStrength::kFull;
  EXPECT_EQ(report.Verdict(WdrfCondition::kNoBarrierMisuse).status.holds, expect_holds);
}

INSTANTIATE_TEST_SUITE_P(Strengths, LockStrengthSweep,
                         ::testing::Values(LockStrength::kFull,
                                           LockStrength::kAcquireOnly,
                                           LockStrength::kReleaseOnly,
                                           LockStrength::kNone),
                         [](const ::testing::TestParamInfo<LockStrength>& info) {
                           switch (info.param) {
                             case LockStrength::kFull:
                               return std::string("full");
                             case LockStrength::kAcquireOnly:
                               return std::string("acquire_only");
                             case LockStrength::kReleaseOnly:
                               return std::string("release_only");
                             case LockStrength::kNone:
                               return std::string("none");
                           }
                           return std::string("unknown");
                         });

// Raw unsynchronized access to a region: DRF-KERNEL itself is violated (two
// CPUs own the object simultaneously).
TEST(WdrfConditionsExtra, UnsynchronizedAccessViolatesDrf) {
  ProgramBuilder pb("no-lock");
  pb.MemSize(1);
  const int region = pb.AddRegion("obj", {0});
  for (int cpu = 0; cpu < 2; ++cpu) {
    auto& t = pb.NewThread();
    t.Dmb(BarrierKind::kSy);  // barriers present, so only ownership can fail
    t.Pull(region);
    t.LoadAddr(0, 0);
    t.AddImm(0, 0, 1);
    t.StoreAddr(0, 0);
    t.Push(region);
    t.Dmb(BarrierKind::kSy);
  }
  KernelSpec spec;
  spec.program = pb.Build();
  const WdrfReport report = CheckWdrf(spec);
  EXPECT_FALSE(report.Verdict(WdrfCondition::kDrfKernel).status.holds);
}

// Accessing a region without owning it at all is also a DRF violation.
TEST(WdrfConditionsExtra, AccessWithoutPullViolatesDrf) {
  ProgramBuilder pb("no-pull");
  pb.MemSize(1);
  pb.AddRegion("obj", {0});
  pb.NewThread().LoadAddr(0, 0);
  KernelSpec spec;
  spec.program = pb.Build();
  const WdrfReport report = CheckWdrf(spec);
  EXPECT_FALSE(report.Verdict(WdrfCondition::kDrfKernel).status.holds);
}

TEST(WdrfConditionsExtra, ReportFormatting) {
  const WdrfReport report = CheckWdrf(VcpuContextKernelSpec(true));
  const std::string text = report.ToString();
  EXPECT_NE(text.find("DRF-KERNEL: HOLDS"), std::string::npos);
  EXPECT_NE(text.find("NO-BARRIER-MISUSE: HOLDS"), std::string::npos);
  EXPECT_TRUE(report.AllHold());
}

// The isolation monitor on the Promising machine: Example 7's kernel read.
TEST(WdrfConditionsExtra, MemoryIsolationVerdicts) {
  // Kernel reads user memory directly: strong isolation violated.
  {
    ProgramBuilder pb("iso-direct");
    pb.MemSize(1);
    pb.NewThread().LoadAddr(0, 0);
    KernelSpec spec;
    spec.program = pb.Build();
    spec.user_cells = {0};
    const WdrfReport report = CheckWdrf(spec);
    EXPECT_FALSE(report.Verdict(WdrfCondition::kMemoryIsolation).status.holds);
  }
  // Oracle-mediated read: weak isolation holds.
  {
    ProgramBuilder pb("iso-oracle");
    pb.MemSize(1);
    pb.NewThread().OracleLoadAddr(0, 0);
    KernelSpec spec;
    spec.program = pb.Build();
    spec.user_cells = {0};
    spec.weak_isolation = true;
    const WdrfReport report = CheckWdrf(spec);
    EXPECT_TRUE(report.Verdict(WdrfCondition::kMemoryIsolation).status.holds);
  }
  // User writing kernel memory: violated.
  {
    ProgramBuilder pb("iso-user-write");
    pb.MemSize(2);
    auto& user = pb.NewThread(/*user=*/true);
    user.StoreImm(1, 5, 0);
    KernelSpec spec;
    spec.program = pb.Build();
    spec.kernel_cells = {1};
    const WdrfReport report = CheckWdrf(spec);
    EXPECT_FALSE(report.Verdict(WdrfCondition::kMemoryIsolation).status.holds);
  }
}

}  // namespace
}  // namespace vrm
