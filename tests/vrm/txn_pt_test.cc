// TRANSACTIONAL-PAGE-TABLE checker tests: the Section 5.4 proofs for
// set_s2pt/clear_s2pt as exhaustive reordering checks, plus negative cases and
// a property sweep over random write sequences.

#include "src/vrm/txn_pt_checker.h"

#include <gtest/gtest.h>

#include "src/sekvm/tinyarm_primitives.h"
#include "src/support/rng.h"

namespace vrm {
namespace {

TEST(WalkSnapshot, WalksAndFaults) {
  MmuConfig mmu;
  mmu.enabled = true;
  mmu.root = 8;
  mmu.levels = 2;
  mmu.table_entries = 2;
  mmu.page_size = 1;
  std::map<Addr, Word> memory;
  EXPECT_TRUE(WalkSnapshot(mmu, memory, 0).fault);  // empty PGD
  memory[8] = MmuConfig::MakeEntry(10);
  EXPECT_TRUE(WalkSnapshot(mmu, memory, 0).fault);  // empty leaf
  memory[10] = MmuConfig::MakeEntry(5);
  const WalkOutcome ok = WalkSnapshot(mmu, memory, 0);
  EXPECT_FALSE(ok.fault);
  EXPECT_EQ(ok.ppage, 5u);
  EXPECT_TRUE(WalkSnapshot(mmu, memory, 1).fault);  // other leaf still empty
}

class SetS2ptLevels : public ::testing::TestWithParam<int> {};

TEST_P(SetS2ptLevels, SetS2ptIsTransactional) {
  const PtWriteSequence seq = SetS2ptWriteSequence(GetParam());
  const TxnCheckResult result =
      CheckTransactionalWrites(seq.mmu, seq.initial, seq.writes, seq.probe_vpages);
  EXPECT_TRUE(result.transactional) << result.detail;
  // n! permutations for n writes.
  uint64_t expected = 1;
  for (uint64_t k = 2; k <= seq.writes.size(); ++k) {
    expected *= k;
  }
  EXPECT_EQ(result.permutations_checked, expected);
}

TEST_P(SetS2ptLevels, ClearS2ptIsTransactional) {
  const PtWriteSequence seq = ClearS2ptWriteSequence(GetParam());
  const TxnCheckResult result =
      CheckTransactionalWrites(seq.mmu, seq.initial, seq.writes, seq.probe_vpages);
  EXPECT_TRUE(result.transactional) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(StageTwoDepths, SetS2ptLevels, ::testing::Values(2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "level";
                         });

TEST(TxnChecker, Example5SequenceIsNotTransactional) {
  const PtWriteSequence seq = NonTransactionalWriteSequence();
  const TxnCheckResult result =
      CheckTransactionalWrites(seq.mmu, seq.initial, seq.writes, seq.probe_vpages);
  EXPECT_FALSE(result.transactional);
  EXPECT_NE(result.detail.find("vpage 0"), std::string::npos) << result.detail;
}

TEST(TxnChecker, RemapInPlaceIsNotTransactional) {
  // Clearing and re-setting a live leaf within one critical section exposes the
  // intermediate fault... which IS permitted; but re-pointing a live leaf to a
  // different frame in two writes (old -> EMPTY -> new) stays transactional,
  // while writing new directly then something else breaks. Check the direct
  // overwrite case: [leaf := new_frame, sibling := x] where the probe sees a
  // mapping that is neither before nor after at an intermediate state only if
  // ordering matters; a single overwrite is trivially transactional.
  MmuConfig mmu;
  mmu.enabled = true;
  mmu.root = 4;
  mmu.levels = 1;
  mmu.table_entries = 2;
  mmu.page_size = 1;
  std::map<Addr, Word> initial{{4, MmuConfig::MakeEntry(0)}};
  // Single write: always transactional.
  const TxnCheckResult single = CheckTransactionalWrites(
      mmu, initial, {{4, MmuConfig::MakeEntry(1)}}, {0});
  EXPECT_TRUE(single.transactional);
  // Two-step remap via EMPTY: the intermediate is a fault — transactional.
  const TxnCheckResult two_step = CheckTransactionalWrites(
      mmu, initial, {{4, MmuConfig::kEmpty}, {4, MmuConfig::MakeEntry(1)}}, {0});
  EXPECT_TRUE(two_step.transactional);
}

TEST(TxnChecker, SwapOfTwoLiveLeavesIsPerWalkTransactional) {
  // Exchanging two live mappings: an intermediate state maps both pages to the
  // same frame, but the condition quantifies over *individual walks* — each
  // page separately sees only its before- or after-frame, so the sequence
  // passes. (Cross-page atomicity is not part of the condition.)
  MmuConfig mmu;
  mmu.enabled = true;
  mmu.root = 4;
  mmu.levels = 1;
  mmu.table_entries = 2;
  mmu.page_size = 1;
  std::map<Addr, Word> initial{{4, MmuConfig::MakeEntry(0)}, {5, MmuConfig::MakeEntry(1)}};
  const TxnCheckResult result = CheckTransactionalWrites(
      mmu, initial,
      {{4, MmuConfig::MakeEntry(1)}, {5, MmuConfig::MakeEntry(0)}}, {0, 1});
  EXPECT_TRUE(result.transactional) << result.detail;
}

TEST(TxnChecker, DoubleWriteThroughIntermediateFrameIsNotTransactional) {
  // Re-pointing one live leaf twice in a single critical section: a reordering
  // can leave the *intermediate* frame as the final visible mapping — neither
  // before nor after in program order.
  MmuConfig mmu;
  mmu.enabled = true;
  mmu.root = 4;
  mmu.levels = 1;
  mmu.table_entries = 2;
  mmu.page_size = 1;
  std::map<Addr, Word> initial{{4, MmuConfig::MakeEntry(0)}};
  const TxnCheckResult result = CheckTransactionalWrites(
      mmu, initial,
      {{4, MmuConfig::MakeEntry(2)}, {4, MmuConfig::MakeEntry(1)}}, {0});
  EXPECT_FALSE(result.transactional);
}

// Property sweep: for random write sequences, the checker's verdict must agree
// with a brute-force reference that re-walks every permutation prefix.
TEST(TxnChecker, RandomSequencesAgreeWithBruteForce) {
  MmuConfig mmu;
  mmu.enabled = true;
  mmu.root = 8;
  mmu.levels = 2;
  mmu.table_entries = 2;
  mmu.page_size = 1;
  Rng rng(2026);
  int transactional_count = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // Random initial PT state and 2-3 random writes over the 2-level geometry.
    std::map<Addr, Word> initial;
    const Addr pgd0 = 8, pgd1 = 9;
    const Addr leaves[4] = {10, 11, 12, 13};
    if (rng.Chance(0.7)) {
      initial[pgd0] = MmuConfig::MakeEntry(10);
    }
    if (rng.Chance(0.5)) {
      initial[pgd1] = MmuConfig::MakeEntry(12);
    }
    for (Addr leaf : leaves) {
      if (rng.Chance(0.5)) {
        initial[leaf] = MmuConfig::MakeEntry(static_cast<Addr>(rng.Below(4)));
      }
    }
    std::vector<PtWrite> writes;
    const int n = 2 + static_cast<int>(rng.Below(2));
    for (int i = 0; i < n; ++i) {
      const Addr cell = rng.Chance(0.4)
                            ? (rng.Chance(0.5) ? pgd0 : pgd1)
                            : leaves[rng.Below(4)];
      const Word value = rng.Chance(0.3)
                             ? MmuConfig::kEmpty
                             : (cell <= pgd1
                                    ? MmuConfig::MakeEntry(
                                          static_cast<Addr>(10 + 2 * rng.Below(2)))
                                    : MmuConfig::MakeEntry(static_cast<Addr>(rng.Below(4))));
      writes.push_back({cell, value});
    }
    const std::vector<VirtAddr> probes{0, 1, 2, 3};
    const TxnCheckResult result =
        CheckTransactionalWrites(mmu, initial, writes, probes);
    if (result.transactional) {
      ++transactional_count;
      // For transactional sequences, double-check by replaying the identity
      // permutation: every prefix walk must already be before/after/fault.
      std::map<Addr, Word> memory = initial;
      std::map<Addr, Word> after = initial;
      for (const PtWrite& w : writes) {
        after[w.cell] = w.value;
      }
      for (const PtWrite& w : writes) {
        memory[w.cell] = w.value;
        for (VirtAddr vp : probes) {
          const WalkOutcome walk = WalkSnapshot(mmu, memory, vp);
          const WalkOutcome before = WalkSnapshot(mmu, initial, vp);
          const WalkOutcome final = WalkSnapshot(mmu, after, vp);
          EXPECT_TRUE(walk.fault || walk == before || walk == final);
        }
      }
    }
  }
  // The sweep must exercise both verdicts.
  EXPECT_GT(transactional_count, 10);
  EXPECT_LT(transactional_count, 190);
}

}  // namespace
}  // namespace vrm
