// The wDRF theorem, validated empirically (Theorems 1/2/4): every program that
// satisfies the wDRF conditions refines SC; every buggy variant exhibits
// RM-only behaviour.

#include "src/vrm/refinement.h"

#include <gtest/gtest.h>

#include <functional>

#include "src/litmus/classics.h"
#include "src/litmus/paper_examples.h"
#include "src/sekvm/tinyarm_primitives.h"
#include "src/vrm/conditions.h"

namespace vrm {
namespace {

struct RefinementCase {
  const char* name;
  std::function<LitmusTest()> make;
  bool expect_refines;
};

class WdrfTheorem : public ::testing::TestWithParam<RefinementCase> {};

TEST_P(WdrfTheorem, RmRefinesScIffWdrf) {
  const RefinementCase& c = GetParam();
  const LitmusTest test = c.make();
  const RefinementResult result = CheckRefinement(test);
  EXPECT_EQ(result.status.holds, c.expect_refines) << result.Describe(test.program);
}

LitmusTest FromSpec(KernelSpec spec) {
  LitmusTest test;
  test.program = std::move(spec.program);
  test.config = spec.base_config;
  return test;
}

INSTANTIATE_TEST_SUITE_P(
    Theorem1, WdrfTheorem,
    ::testing::Values(
        // wDRF-satisfying programs: refinement holds.
        RefinementCase{"example1_fixed", [] { return Example1OutOfOrderWrite(true); },
                       true},
        RefinementCase{"example3_fixed", [] { return Example3VmContextSwitch(true); },
                       true},
        RefinementCase{"example5_transactional",
                       [] { return Example5PageTableWrites(true); }, true},
        RefinementCase{"gen_vmid_verified",
                       [] { return FromSpec(GenVmidKernelSpec(true)); }, true},
        RefinementCase{"vcpu_context_verified",
                       [] { return FromSpec(VcpuContextKernelSpec(true)); }, true},
        RefinementCase{"sb_dmb", [] { return ClassicSb(Strength::kDmb); }, true},
        RefinementCase{"mp_rel_acq",
                       [] { return ClassicMp(Strength::kAcqRel, Strength::kAcqRel); },
                       true},
        // Condition-violating programs: RM-only behaviours exist.
        RefinementCase{"example1_buggy", [] { return Example1OutOfOrderWrite(false); },
                       false},
        RefinementCase{"example3_buggy", [] { return Example3VmContextSwitch(false); },
                       false},
        RefinementCase{"example4_buggy", [] { return Example4PageTableReads(); },
                       false},
        RefinementCase{"example5_buggy",
                       [] { return Example5PageTableWrites(false); }, false},
        RefinementCase{"gen_vmid_unverified",
                       [] { return FromSpec(GenVmidKernelSpec(false)); }, false},
        RefinementCase{"vcpu_context_unverified",
                       [] { return FromSpec(VcpuContextKernelSpec(false)); }, false},
        RefinementCase{"sb_plain", [] { return ClassicSb(Strength::kPlain); }, false},
        RefinementCase{"mp_plain",
                       [] { return ClassicMp(Strength::kPlain, Strength::kPlain); },
                       false}),
    [](const ::testing::TestParamInfo<RefinementCase>& info) {
      return info.param.name;
    });

// Consistency: a program whose wDRF check passes must also refine SC — the two
// sides of the theorem agree on the verified primitives.
TEST(WdrfTheoremConsistency, CheckedConditionsImplyRefinement) {
  for (bool verified : {true, false}) {
    KernelSpec spec = GenVmidKernelSpec(verified);
    const WdrfReport report = CheckWdrf(spec);
    const RefinementResult refinement = CheckRefinement(FromSpec(std::move(spec)));
    if (report.AllHold()) {
      EXPECT_TRUE(refinement.status.holds);
    } else {
      // The theorem is one-directional; a violated condition does not force a
      // refinement failure, but for this primitive it does manifest.
      EXPECT_FALSE(verified);
    }
  }
}

// SC outcomes are always contained in RM outcomes (the models agree on
// architectural reachability; RM only adds behaviours).
TEST(WdrfTheoremConsistency, ScIsAlwaysSubsetOfRm) {
  for (const LitmusTest& test : AllBuggyExamples()) {
    const ExploreResult sc = RunSc(test);
    const ExploreResult rm = RunPromising(test);
    EXPECT_TRUE(OutcomesBeyond(sc, rm).empty()) << test.program.name;
  }
}

}  // namespace
}  // namespace vrm
