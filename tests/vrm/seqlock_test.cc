// The seqlock as Section 3's boundary case: it deliberately violates
// DRF-KERNEL (readers race with the writer by design), so VRM's wDRF route is
// unavailable — yet direct RM checking shows the barrier-correct variant never
// surfaces a torn snapshot, while the barrier-free variant does. "The wDRF
// conditions are sufficient but not necessary."

#include <gtest/gtest.h>

#include "src/litmus/litmus.h"
#include "src/sekvm/tinyarm_primitives.h"
#include "src/vrm/conditions.h"

namespace vrm {
namespace {

// An accepted snapshot is torn when the two data cells disagree.
bool TornSnapshot(const Outcome& o) {
  return o.regs[2] == 1 && o.regs[0] != o.regs[1];
}

TEST(Seqlock, ViolatesDrfKernelByDesign) {
  // Both variants race readers against the writer on the data cells.
  for (bool verified : {true, false}) {
    const WdrfReport report = CheckWdrf(SeqlockKernelSpec(verified));
    EXPECT_FALSE(report.Verdict(WdrfCondition::kDrfKernel).status.holds)
        << "seqlock readers must show up as a data race (verified=" << verified
        << ")";
  }
}

TEST(Seqlock, BarrierCorrectVariantNeverTearsOnRm) {
  KernelSpec spec = SeqlockKernelSpec(/*verified=*/true);
  LitmusTest test{std::move(spec.program), spec.base_config, ""};
  // Explore architecturally (no ghost protocol: it already failed above, and
  // the question here is the observable behaviour).
  const ExploreResult rm = RunPromising(test);
  EXPECT_FALSE(AnyOutcome(rm, TornSnapshot)) << rm.Describe(test.program);
  // Readers do accept snapshots in some executions.
  const auto accepted = [](const Outcome& o) { return o.regs[2] == 1; };
  EXPECT_TRUE(AnyOutcome(rm, accepted));
  // Both the before- (0,0) and after- (1,1) snapshots are observable.
  const auto before = [](const Outcome& o) {
    return o.regs[2] == 1 && o.regs[0] == 0 && o.regs[1] == 0;
  };
  const auto after = [](const Outcome& o) {
    return o.regs[2] == 1 && o.regs[0] == 1 && o.regs[1] == 1;
  };
  EXPECT_TRUE(AnyOutcome(rm, before));
  EXPECT_TRUE(AnyOutcome(rm, after));
}

TEST(Seqlock, BarrierFreeVariantTearsOnRm) {
  KernelSpec spec = SeqlockKernelSpec(/*verified=*/false);
  LitmusTest test{std::move(spec.program), spec.base_config, ""};
  const ExploreResult rm = RunPromising(test);
  EXPECT_TRUE(AnyOutcome(rm, TornSnapshot)) << rm.Describe(test.program);
}

TEST(Seqlock, NoTearingOnScEitherWay) {
  // The SC model accepts both variants — exactly why SC-only verification is
  // not enough for seqlocks on Arm.
  for (bool verified : {true, false}) {
    KernelSpec spec = SeqlockKernelSpec(verified);
    LitmusTest test{std::move(spec.program), spec.base_config, ""};
    const ExploreResult sc = RunSc(test);
    EXPECT_FALSE(AnyOutcome(sc, TornSnapshot))
        << "verified=" << verified << "\n"
        << sc.Describe(test.program);
  }
}

}  // namespace
}  // namespace vrm
