// Section 4.1's SC-execution construction, validated over many sampled RM
// executions: the replayed SC execution always produces identical results.

#include "src/vrm/sc_construction.h"

#include <gtest/gtest.h>

#include "src/sekvm/tinyarm_primitives.h"

namespace vrm {
namespace {

class ScConstructionRounds : public ::testing::TestWithParam<int> {};

TEST_P(ScConstructionRounds, ReplayMatchesRmResults) {
  const LockedCounterProgram lc = MakeLockedCounter(GetParam(), /*verified=*/true);
  int completed = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const ScConstructionResult result =
        ConstructAndReplay(lc.program, lc.config, seed);
    if (!result.rm_walk_completed) {
      continue;  // dead-ended sample; documented behaviour, retry via next seed
    }
    ++completed;
    EXPECT_TRUE(result.replay_completed) << "seed " << seed << ": " << result.detail;
    EXPECT_TRUE(result.results_match) << "seed " << seed << ": " << result.detail;
    // The final counter value equals the total increments in every execution.
    ASSERT_EQ(result.rm_outcome.locs.size(), 1u);
    EXPECT_EQ(result.rm_outcome.locs[0],
              static_cast<Word>(2 * GetParam()));
  }
  EXPECT_GE(completed, 15) << "too many dead-ended walks";
}

INSTANTIATE_TEST_SUITE_P(CriticalSectionCounts, ScConstructionRounds,
                         ::testing::Values(1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "rounds";
                         });

TEST(ScConstruction, InstancesAreOrderedByPullPosition) {
  const LockedCounterProgram lc = MakeLockedCounter(2, /*verified=*/true);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const ScConstructionResult result =
        ConstructAndReplay(lc.program, lc.config, seed);
    if (!result.rm_walk_completed) {
      continue;
    }
    // Two CPUs x 2 rounds = 4 critical-section instances, pull positions
    // strictly increasing, same-region pushes before the next pull.
    ASSERT_EQ(result.instances.size(), 4u);
    for (size_t i = 1; i < result.instances.size(); ++i) {
      EXPECT_LT(result.instances[i - 1].pull_pos, result.instances[i].pull_pos);
      EXPECT_LT(result.instances[i - 1].push_pos, result.instances[i].pull_pos)
          << "critical sections of one region must not overlap";
    }
  }
}

TEST(ScConstruction, DeadEndedWalkReportsGracefully) {
  // An impossible budget dead-ends the walk immediately.
  LockedCounterProgram lc = MakeLockedCounter(1, /*verified=*/true);
  lc.config.max_steps_per_thread = 2;
  const ScConstructionResult result = ConstructAndReplay(lc.program, lc.config, 1);
  EXPECT_FALSE(result.rm_walk_completed);
  EXPECT_FALSE(result.results_match);
  EXPECT_FALSE(result.detail.empty());
}

}  // namespace
}  // namespace vrm
