// Performance-model tests: TLB simulation behaviour and the qualitative shapes
// the paper's evaluation establishes (Section 6) — who wins, by roughly what
// factor, and where the crossovers fall.

#include <gtest/gtest.h>

#include "src/perf/app_sim.h"
#include "src/perf/micro_sim.h"
#include "src/perf/multivm_sim.h"
#include "src/perf/tlb_model.h"

namespace vrm {
namespace {

TEST(TlbSim, HitsAfterFill) {
  TlbSim tlb(16, 4);
  EXPECT_FALSE(tlb.Access(1));
  EXPECT_TRUE(tlb.Access(1));
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbSim, LruEvictionWithinSet) {
  TlbSim tlb(4, 4);  // one set, 4 ways
  for (uint64_t page = 0; page < 4; ++page) {
    EXPECT_FALSE(tlb.Access(page));
  }
  EXPECT_TRUE(tlb.Access(0));   // refresh 0
  EXPECT_FALSE(tlb.Access(4));  // evicts LRU (1)
  EXPECT_TRUE(tlb.Access(0));
  EXPECT_FALSE(tlb.Access(1));  // 1 was evicted
}

TEST(TlbSim, WorkingSetBeyondCapacityThrashes) {
  TlbSim tlb(16, 4);
  // Cyclic sweep over 64 pages: steady-state misses stay near 100%.
  for (int iter = 0; iter < 4; ++iter) {
    for (uint64_t page = 0; page < 64; ++page) {
      tlb.Access(page);
    }
  }
  EXPECT_GT(tlb.misses(), tlb.accesses() * 9 / 10);
  tlb.Flush();
  EXPECT_FALSE(tlb.Access(0));
}

TEST(TlbSim, WorkingSetWithinCapacityHits) {
  TlbSim tlb(1024, 4);
  for (int iter = 0; iter < 4; ++iter) {
    for (uint64_t page = 0; page < 64; ++page) {
      tlb.Access(page);
    }
  }
  // Only the first sweep misses.
  EXPECT_EQ(tlb.misses(), 64u);
}

class MicroShapes : public ::testing::TestWithParam<Micro> {};

TEST_P(MicroShapes, SeKvmCostsMoreThanKvmEverywhere) {
  for (const Platform& platform : {PlatformM400(), PlatformSeattle()}) {
    const auto kvm = SimulateMicro(platform, Hypervisor::kKvm, GetParam());
    const auto sekvm = SimulateMicro(platform, Hypervisor::kSeKvm, GetParam());
    EXPECT_GT(sekvm.cycles, kvm.cycles) << platform.name;
    // ... but by less than 2.5x (Table 3's worst ratio is ~2.3x).
    EXPECT_LT(sekvm.cycles, kvm.cycles * 5 / 2) << platform.name;
  }
}

TEST_P(MicroShapes, M400GapDominatedByTlb) {
  // The m400's SeKVM overhead is mostly TLB misses from KServ's 4 KB granules;
  // Seattle's TLB absorbs the same footprint entirely.
  const auto m400 = SimulateMicro(PlatformM400(), Hypervisor::kSeKvm, GetParam());
  const auto seattle = SimulateMicro(PlatformSeattle(), Hypervisor::kSeKvm, GetParam());
  EXPECT_GT(m400.tlb_misses, 50u);
  EXPECT_EQ(seattle.tlb_misses, 0u);
  EXPECT_GT(m400.tlb_miss_cycles, m400.cycles / 4);
}

TEST_P(MicroShapes, KvmHostHugePagesAvoidTlbPressure) {
  const auto kvm = SimulateMicro(PlatformM400(), Hypervisor::kKvm, GetParam());
  EXPECT_LE(kvm.tlb_misses, 1u);
}

TEST_P(MicroShapes, ThreeLevelStage2HelpsSmallTlbs) {
  // Section 5.6's motivation: fewer levels -> cheaper walks on tiny-TLB CPUs.
  SimOptions three;
  three.s2_levels = 3;
  SimOptions four;
  four.s2_levels = 4;
  const auto l3 = SimulateMicro(PlatformM400(), Hypervisor::kSeKvm, GetParam(), three);
  const auto l4 = SimulateMicro(PlatformM400(), Hypervisor::kSeKvm, GetParam(), four);
  EXPECT_LT(l3.cycles, l4.cycles);
  // On Seattle the depth barely matters.
  const auto s3 = SimulateMicro(PlatformSeattle(), Hypervisor::kSeKvm, GetParam(), three);
  const auto s4 = SimulateMicro(PlatformSeattle(), Hypervisor::kSeKvm, GetParam(), four);
  EXPECT_EQ(s3.cycles, s4.cycles);
}

INSTANTIATE_TEST_SUITE_P(AllMicros, MicroShapes,
                         ::testing::Values(Micro::kHypercall, Micro::kIoKernel,
                                           Micro::kIoUser, Micro::kVirtualIpi),
                         [](const ::testing::TestParamInfo<Micro>& info) {
                           switch (info.param) {
                             case Micro::kHypercall:
                               return std::string("Hypercall");
                             case Micro::kIoKernel:
                               return std::string("IoKernel");
                             case Micro::kIoUser:
                               return std::string("IoUser");
                             case Micro::kVirtualIpi:
                               return std::string("VirtualIpi");
                           }
                           return std::string("unknown");
                         });

TEST(MicroCalibration, KvmColumnApproximatesTable3) {
  // The calibration target: unmodified KVM within 5% of the published cycles.
  struct Row {
    Micro micro;
    uint64_t m400;
    uint64_t seattle;
  };
  const Row rows[] = {{Micro::kHypercall, 2275, 2896},
                      {Micro::kIoKernel, 3144, 3831},
                      {Micro::kIoUser, 7864, 9288},
                      {Micro::kVirtualIpi, 7915, 8816}};
  for (const Row& row : rows) {
    const auto m400 = SimulateMicro(PlatformM400(), Hypervisor::kKvm, row.micro);
    const auto seattle = SimulateMicro(PlatformSeattle(), Hypervisor::kKvm, row.micro);
    EXPECT_NEAR(static_cast<double>(m400.cycles), static_cast<double>(row.m400),
                0.05 * row.m400);
    EXPECT_NEAR(static_cast<double>(seattle.cycles), static_cast<double>(row.seattle),
                0.05 * row.seattle);
  }
}

TEST(MicroCalibration, SeattleOverheadWithinPaperRange) {
  // "For Seattle, SeKVM only incurs 17% to 28% overhead over KVM."
  for (Micro micro : {Micro::kHypercall, Micro::kIoKernel, Micro::kIoUser,
                      Micro::kVirtualIpi}) {
    const auto kvm = SimulateMicro(PlatformSeattle(), Hypervisor::kKvm, micro);
    const auto sekvm = SimulateMicro(PlatformSeattle(), Hypervisor::kSeKvm, micro);
    const double overhead =
        static_cast<double>(sekvm.cycles - kvm.cycles) / kvm.cycles;
    EXPECT_GE(overhead, 0.10) << ToString(micro);
    EXPECT_LE(overhead, 0.30) << ToString(micro);
  }
}

TEST(AppShapes, SeKvmWithinTenPercentOfKvm) {
  // Figure 8's headline: worst-case SeKVM overhead < 10% vs unmodified KVM.
  for (const Platform& platform : {PlatformM400(), PlatformSeattle()}) {
    for (LinuxVersion version : {LinuxVersion::k418, LinuxVersion::k54}) {
      SimOptions options;
      options.version = version;
      for (const AppWorkload& workload : AllAppWorkloads()) {
        const auto kvm = SimulateApp(platform, Hypervisor::kKvm, workload, options);
        const auto sekvm = SimulateApp(platform, Hypervisor::kSeKvm, workload, options);
        EXPECT_LT(sekvm.normalized, kvm.normalized);
        EXPECT_GT(sekvm.normalized, 0.90 * kvm.normalized)
            << workload.name << " on " << platform.name;
        EXPECT_GT(sekvm.normalized, 0.5);  // sane absolute range
        EXPECT_LE(kvm.normalized, 1.0);
      }
    }
  }
}

TEST(AppShapes, KernbenchIsTheCheapestWorkload) {
  // CPU-bound compile has the fewest exits; it must show the least overhead.
  const Platform platform = PlatformM400();
  const auto kernbench =
      SimulateApp(platform, Hypervisor::kSeKvm, WorkloadByName("Kernbench"));
  for (const AppWorkload& workload : AllAppWorkloads()) {
    const auto result = SimulateApp(platform, Hypervisor::kSeKvm, workload);
    EXPECT_LE(result.normalized, kernbench.normalized + 1e-9) << workload.name;
  }
}

TEST(MultiVmShapes, ThroughputFlatThenInverseN) {
  // 2-vCPU VMs on 8 cores: per-VM performance holds to 4 VMs, then drops ~1/N.
  const Platform platform = PlatformM400();
  const AppWorkload& workload = WorkloadByName("Hackbench");
  const auto n1 = SimulateMultiVm(platform, Hypervisor::kKvm, workload, 1);
  const auto n4 = SimulateMultiVm(platform, Hypervisor::kKvm, workload, 4);
  const auto n8 = SimulateMultiVm(platform, Hypervisor::kKvm, workload, 8);
  const auto n32 = SimulateMultiVm(platform, Hypervisor::kKvm, workload, 32);
  EXPECT_GT(n4.normalized, 0.9 * n1.normalized);
  EXPECT_LT(n8.normalized, 0.7 * n4.normalized);
  EXPECT_NEAR(n32.normalized, n8.normalized * 8 / 32.0, 0.05 * n8.normalized);
}

TEST(MultiVmShapes, SeKvmScalesLikeKvm) {
  // Figure 9's headline: <= 10% overhead vs KVM at every VM count.
  const Platform platform = PlatformM400();
  for (const char* name : {"Hackbench", "Apache", "Redis"}) {
    const AppWorkload& workload = WorkloadByName(name);
    for (int n : {1, 2, 4, 8, 16, 32}) {
      const auto kvm = SimulateMultiVm(platform, Hypervisor::kKvm, workload, n);
      const auto sekvm = SimulateMultiVm(platform, Hypervisor::kSeKvm, workload, n);
      EXPECT_GT(sekvm.normalized, 0.90 * kvm.normalized)
          << name << " at " << n << " VMs";
      EXPECT_LE(sekvm.normalized, kvm.normalized * 1.001);
    }
  }
}

TEST(MultiVmShapes, KCoreLockStaysUnsaturated) {
  // The mechanism behind the parity: even at 32 VMs the KCore lock is far from
  // saturation (the paper's conclusion about lock usage not hurting
  // scalability).
  const Platform platform = PlatformM400();
  const auto result = SimulateMultiVm(platform, Hypervisor::kSeKvm,
                                      WorkloadByName("Redis"), 32);
  EXPECT_LT(result.lock_utilization, 0.30);
}

TEST(MultiVmShapes, LatencyGrowsWithOversubscription) {
  const Platform platform = PlatformM400();
  const AppWorkload& workload = WorkloadByName("Hackbench");
  const auto n2 = SimulateMultiVm(platform, Hypervisor::kKvm, workload, 2);
  const auto n16 = SimulateMultiVm(platform, Hypervisor::kKvm, workload, 16);
  EXPECT_GT(n16.latency_p50, n2.latency_p50);
  EXPECT_GE(n16.latency_p99, n16.latency_p50);
  EXPECT_GT(n2.latency_p50, 0.0);
}

TEST(MultiVmShapes, VersionFactorBarelyMoves) {
  // Linux 5.4 vs 4.18 is a small uniform software improvement; the relative
  // KVM/SeKVM picture must not change (Figure 8's observation).
  const Platform platform = PlatformSeattle();
  for (const AppWorkload& workload : AllAppWorkloads()) {
    SimOptions v418;
    v418.version = LinuxVersion::k418;
    SimOptions v54;
    v54.version = LinuxVersion::k54;
    const double r418 =
        SimulateApp(platform, Hypervisor::kSeKvm, workload, v418).normalized /
        SimulateApp(platform, Hypervisor::kKvm, workload, v418).normalized;
    const double r54 =
        SimulateApp(platform, Hypervisor::kSeKvm, workload, v54).normalized /
        SimulateApp(platform, Hypervisor::kKvm, workload, v54).normalized;
    EXPECT_NEAR(r418, r54, 0.01) << workload.name;
  }
}

TEST(MultiVmShapes, IoBoundWorkloadSaturatesBackend) {
  const Platform platform = PlatformM400();
  const auto redis = SimulateMultiVm(platform, Hypervisor::kKvm,
                                     WorkloadByName("Redis"), 8);
  EXPECT_GT(redis.backend_utilization, 0.95);
  const auto kernbench = SimulateMultiVm(platform, Hypervisor::kKvm,
                                         WorkloadByName("Kernbench"), 8);
  EXPECT_LT(kernbench.backend_utilization, 0.5);
}

}  // namespace
}  // namespace vrm
