// Governed-run behaviour across the stack: an expired deadline, a crossed
// memory ceiling, or a tripped CancelToken must stop BOTH explorer engines
// cooperatively and yield a well-formed partial result — truncated, carrying
// the exact StopCause, verdicts bounded and never Definitive() — while a
// governed run whose budget is never hit behaves identically to an ungoverned
// one at every worker count. The same contract is exercised through Explore(),
// the governed VerifyKernel overload, and the governed RunLitmusBatch.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/arch/builder.h"
#include "src/engine/verify_kernel.h"
#include "src/litmus/batch.h"
#include "src/litmus/classics.h"
#include "src/litmus/litmus.h"
#include "src/model/explorer.h"
#include "src/model/sc_machine.h"
#include "src/sekvm/tinyarm_primitives.h"
#include "src/support/governance.h"

namespace vrm {
namespace {

// A workload big enough that a governed stop lands mid-run at any worker
// count: three threads, each two stores (27 unique SC states), scaled up by
// `cells` if a longer run is needed.
Program StoreGrid(int cells) {
  ProgramBuilder pb("store_grid");
  pb.MemSize(static_cast<Addr>(cells));
  for (int i = 0; i < cells; ++i) {
    auto& t = pb.NewThread();
    t.StoreImm(static_cast<Addr>(i), 1, 1).StoreImm(static_cast<Addr>(i), 2, 1);
  }
  return pb.Build();
}

ExploreResult GovernedScRun(const Program& program, const GovernanceOptions& governance,
                            int num_threads) {
  ModelConfig config;
  config.num_threads = num_threads;
  config.governance = governance;
  ScMachine machine(program, config);
  return Explore(machine, config);
}

TEST(GovernedExplore, ExpiredDeadlineYieldsBoundedPartialResult) {
  GovernanceOptions governance;
  governance.budget.deadline_seconds = 1e-9;  // expired before the first poll
  for (int threads : {1, 4}) {
    const ExploreResult result = GovernedScRun(StoreGrid(3), governance, threads);
    EXPECT_TRUE(result.stats.truncated) << threads << " workers";
    EXPECT_EQ(result.stats.stop_cause, StopCause::kDeadline) << threads << " workers";
    // A verdict judged from this walk pair is bounded, never definitive —
    // whether it holds or not.
    const Boundedness pass = Boundedness::Judge(true, result.stats.truncated);
    const Boundedness fail = Boundedness::Judge(false, result.stats.truncated);
    EXPECT_FALSE(pass.Definitive()) << threads << " workers";
    EXPECT_FALSE(fail.Definitive()) << threads << " workers";
    EXPECT_STREQ(pass.Qualifier(), " [bounded-pass]");
    EXPECT_STREQ(fail.Qualifier(), " [bounded-fail]");
    // The partial result is well-formed: the stats line renders the cause.
    EXPECT_NE(result.stats.Describe().find("[truncated: deadline]"),
              std::string::npos);
  }
}

TEST(GovernedExplore, PreCancelledTokenStopsBothEngines) {
  CancelToken token;
  token.Cancel();
  GovernanceOptions governance;
  governance.cancel = &token;
  for (int threads : {1, 4}) {
    const ExploreResult result = GovernedScRun(StoreGrid(3), governance, threads);
    EXPECT_TRUE(result.stats.truncated) << threads << " workers";
    EXPECT_EQ(result.stats.stop_cause, StopCause::kCancelled) << threads << " workers";
  }
}

TEST(GovernedExplore, MidRunCancellationDrainsCooperatively) {
  // An external thread cancels while workers are mid-walk. The workload is
  // big enough (6 threads x 2 stores) that the cancel can land mid-run, and
  // small enough to finish quickly when it lands late — either way the run
  // must end with a well-formed result.
  CancelToken token;
  GovernanceOptions governance;
  governance.cancel = &token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    token.Cancel();
  });
  const ExploreResult result = GovernedScRun(StoreGrid(6), governance, 4);
  canceller.join();
  if (result.stats.truncated) {
    EXPECT_EQ(result.stats.stop_cause, StopCause::kCancelled);
  } else {
    // The walk quiesced before the cancel landed: a complete result.
    EXPECT_EQ(result.stats.stop_cause, StopCause::kNone);
  }
}

TEST(GovernedExplore, MemoryCeilingStopsTheRun) {
  GovernanceOptions governance;
  governance.budget.soft_memory_bytes = 1;  // crossed by the first estimate
  for (int threads : {1, 4}) {
    const ExploreResult result = GovernedScRun(StoreGrid(3), governance, threads);
    EXPECT_TRUE(result.stats.truncated) << threads << " workers";
    EXPECT_EQ(result.stats.stop_cause, StopCause::kMemory) << threads << " workers";
  }
}

TEST(GovernedExplore, GenerousBudgetMatchesUngovernedRunAtEveryWorkerCount) {
  const Program program = StoreGrid(3);
  const ExploreResult bare = GovernedScRun(program, GovernanceOptions(), 1);
  ASSERT_FALSE(bare.stats.truncated);

  GovernanceOptions governance;
  governance.budget.deadline_seconds = 3600;
  governance.budget.soft_memory_bytes = 1ull << 40;
  for (int threads : {1, 2, 4}) {
    const ExploreResult governed = GovernedScRun(program, governance, threads);
    EXPECT_FALSE(governed.stats.truncated) << threads << " workers";
    EXPECT_EQ(governed.stats.stop_cause, StopCause::kNone) << threads << " workers";
    EXPECT_EQ(governed.stats.states, bare.stats.states) << threads << " workers";
    std::vector<std::string> bare_keys, governed_keys;
    for (const auto& [key, outcome] : bare.outcomes) {
      (void)outcome;
      bare_keys.push_back(key);
    }
    for (const auto& [key, outcome] : governed.outcomes) {
      (void)outcome;
      governed_keys.push_back(key);
    }
    EXPECT_EQ(bare_keys, governed_keys) << threads << " workers";
    EXPECT_TRUE(Boundedness::Judge(true, governed.stats.truncated).Definitive());
  }
}

TEST(GovernedExplore, HeartbeatsCarryProgressAndParallelSteals) {
  std::vector<std::string> events;
  GovernanceOptions governance;
  governance.budget.deadline_seconds = 3600;
  governance.telemetry.sink = [&](const std::string& event) { events.push_back(event); };
  governance.telemetry.interval_seconds = 0;  // heartbeat on every poll
  governance.telemetry.run_name = "hb";
  // StoreGrid(7) estimates 3^7 = 2187 interleavings, above kParallelMinStates,
  // so Explore() keeps the parallel engine (and its steal probe) engaged
  // instead of downgrading the run to the sequential explorer.
  const ExploreResult result = GovernedScRun(StoreGrid(7), governance, 4);
  EXPECT_FALSE(result.stats.truncated);

  // One heartbeat per expansion poll, plus the final end event from Explore().
  ASSERT_GE(events.size(), 2u);
  EXPECT_NE(events.back().find("\"event\": \"end\""), std::string::npos);
  size_t with_steals = 0;
  for (const std::string& event : events) {
    EXPECT_EQ(event.front(), '{');
    EXPECT_EQ(event.back(), '}');
    EXPECT_EQ(event.find('\n'), std::string::npos);
    EXPECT_NE(event.find("\"run\": \"hb\""), std::string::npos);
    EXPECT_NE(event.find("\"states\": "), std::string::npos);
    EXPECT_NE(event.find("\"rss_bytes\": "), std::string::npos);
    with_steals += event.find("\"steals\": [") != std::string::npos ? 1 : 0;
  }
  // The parallel explorer's probe was registered for the whole walk, so every
  // heartbeat (though not necessarily the end event, emitted after the probe
  // unregisters) carries the per-worker steal array.
  EXPECT_GE(with_steals, events.size() - 1);
}

TEST(GovernedVerifyKernel, DeadlineExpiredRunIsBoundedWithCause) {
  GovernanceOptions governance;
  governance.budget.deadline_seconds = 1e-9;
  const KernelVerification v = VerifyKernel(GenVmidKernelSpec(true), governance);
  // Both walks stopped on the shared governor's deadline.
  EXPECT_TRUE(v.refinement.rm.stats.truncated);
  EXPECT_TRUE(v.refinement.sc.stats.truncated);
  EXPECT_EQ(v.refinement.rm.stats.stop_cause, StopCause::kDeadline);
  EXPECT_EQ(v.refinement.sc.stats.stop_cause, StopCause::kDeadline);
  EXPECT_TRUE(v.refinement.status.truncated);
  EXPECT_FALSE(v.refinement.Definitive());
  EXPECT_FALSE(v.Definitive());
  // The cause reaches both the human-readable report and the JSON lines
  // (numeric StopCause: 2 = deadline).
  EXPECT_NE(v.Describe().find("[truncated: deadline]"), std::string::npos);
  const std::string json = v.ToJsonLines("verify_kernel/governed");
  EXPECT_NE(json.find("\"metric\": \"rm_stop_cause\", \"value\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"sc_stop_cause\", \"value\": 2"), std::string::npos);
}

TEST(GovernedVerifyKernel, GenerousBudgetMatchesUngovernedVerdicts) {
  const KernelSpec spec = GenVmidKernelSpec(true);
  const KernelVerification bare = VerifyKernel(spec);
  GovernanceOptions governance;
  governance.budget.deadline_seconds = 3600;
  const KernelVerification governed = VerifyKernel(spec, governance);
  EXPECT_EQ(governed.AllHold(), bare.AllHold());
  EXPECT_EQ(governed.Definitive(), bare.Definitive());
  EXPECT_EQ(governed.refinement.status, bare.refinement.status);
  EXPECT_EQ(governed.refinement.rm.stats.states, bare.refinement.rm.stats.states);
  EXPECT_EQ(governed.refinement.sc.stats.states, bare.refinement.sc.stats.states);
}

TEST(GovernedBatch, DeadlineSkipsRemainingTestsWithWellFormedEntries) {
  std::vector<LitmusTest> suite;
  for (int i = 0; i < 6; ++i) {
    suite.push_back(ClassicMp(Strength::kDmb, Strength::kAddrDep));
  }
  BatchOptions options;
  options.num_threads = 2;
  options.governance.budget.deadline_seconds = 1e-9;
  const BatchResult batch = RunLitmusBatch(suite, options);
  ASSERT_EQ(batch.entries.size(), suite.size());
  for (const BatchEntry& entry : batch.entries) {
    // Every entry — explored-then-stopped or never started — is truncated
    // with the batch's cause, and its verdict is bounded.
    EXPECT_TRUE(entry.status.truncated);
    EXPECT_EQ(entry.stop_cause(), StopCause::kDeadline);
    EXPECT_FALSE(entry.status.Definitive());
  }
  EXPECT_NE(batch.Summary().find("[bounded: deadline]"), std::string::npos);
}

TEST(GovernedBatch, GenerousBudgetMatchesUngovernedBatch) {
  std::vector<LitmusTest> suite = DefaultLitmusSuite();
  suite.resize(6);
  const BatchResult bare = RunLitmusBatch(suite, 2);
  BatchOptions options;
  options.num_threads = 2;
  options.governance.budget.deadline_seconds = 3600;
  std::vector<std::string> events;
  options.governance.telemetry.sink = [&](const std::string& event) {
    events.push_back(event);
  };
  options.governance.telemetry.interval_seconds = 3600;  // end event only
  const BatchResult governed = RunLitmusBatch(suite, options);
  ASSERT_EQ(governed.entries.size(), bare.entries.size());
  for (size_t i = 0; i < bare.entries.size(); ++i) {
    EXPECT_EQ(governed.entries[i].status, bare.entries[i].status) << i;
    EXPECT_EQ(governed.entries[i].rm.stats.states, bare.entries[i].rm.stats.states) << i;
    EXPECT_EQ(governed.entries[i].sc.stats.states, bare.entries[i].sc.stats.states) << i;
  }
  // The batch owns one governor: exactly one end event after the whole suite.
  ASSERT_GE(events.size(), 1u);
  EXPECT_NE(events.back().find("\"event\": \"end\""), std::string::npos);
}

}  // namespace
}  // namespace vrm
