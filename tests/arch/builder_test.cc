// Tests for the TinyArm program builder, label resolution, MMU geometry, and
// program validation.

#include "src/arch/builder.h"

#include <gtest/gtest.h>

namespace vrm {
namespace {

TEST(Builder, LabelsResolveForwardAndBackward) {
  ProgramBuilder pb("labels");
  auto& t = pb.NewThread();
  t.Label("top");
  t.MovImm(0, 1);
  t.Cbz(1, "end");     // forward
  t.Cbnz(0, "top");    // backward
  t.Label("end");
  t.Halt();
  const Program p = pb.Build();
  ASSERT_EQ(p.threads[0].code.size(), 4u);
  EXPECT_EQ(p.threads[0].code[1].target, 3);  // "end"
  EXPECT_EQ(p.threads[0].code[2].target, 0);  // "top"
}

TEST(Builder, LiteralAddressHelpersSynthesizeScratch) {
  ProgramBuilder pb("lit");
  auto& t = pb.NewThread();
  t.LoadAddr(0, 7);
  const Program p = pb.Build();
  ASSERT_EQ(p.threads[0].code.size(), 2u);
  EXPECT_EQ(p.threads[0].code[0].op, Op::kMovImm);
  EXPECT_EQ(p.threads[0].code[0].rd, kAddrReg);
  EXPECT_EQ(p.threads[0].code[1].op, Op::kLoad);
  EXPECT_EQ(p.threads[0].code[1].rs, kAddrReg);
}

TEST(Builder, RegionsAndObservations) {
  ProgramBuilder pb("obs");
  pb.MemSize(8);
  const int r = pb.AddRegion("shared", {3, 4});
  pb.NewThread().Pull(r).Push(r);
  pb.ObserveLoc(3).ObserveReg(0, 1);
  const Program p = pb.Build();
  EXPECT_EQ(p.RegionOf(3), 0);
  EXPECT_EQ(p.RegionOf(4), 0);
  EXPECT_EQ(p.RegionOf(5), -1);
  EXPECT_EQ(p.observed_locs.size(), 1u);
  EXPECT_EQ(p.observed_regs.size(), 1u);
}

TEST(Builder, PteEncoding) {
  const Word entry = MmuConfig::MakeEntry(13);
  EXPECT_TRUE(MmuConfig::EntryValid(entry));
  EXPECT_EQ(MmuConfig::EntryTarget(entry), 13u);
  EXPECT_FALSE(MmuConfig::EntryValid(MmuConfig::kEmpty));
}

TEST(Builder, MmuLevelIndexing) {
  MmuConfig mmu;
  mmu.enabled = true;
  mmu.levels = 2;
  mmu.table_entries = 4;
  mmu.page_size = 2;
  // vpage 6 = idx (1, 2) with 4 entries per level.
  EXPECT_EQ(mmu.LevelIndex(6, 0), 1);
  EXPECT_EQ(mmu.LevelIndex(6, 1), 2);
  EXPECT_EQ(mmu.PageOf(13), 6u);
  EXPECT_EQ(mmu.OffsetOf(13), 1);
}

TEST(Builder, MapPageBuildsConsistentChain) {
  MmuConfig mmu;
  mmu.root = 8;
  mmu.levels = 2;
  mmu.table_entries = 2;
  mmu.page_size = 1;
  ProgramBuilder pb("map");
  pb.MemSize(16).Mmu(mmu);
  pb.MapPage(0, 3);
  pb.MapPage(1, 4);  // shares the level-1 table with vpage 0
  pb.NewThread().Halt();
  const Program p = pb.Build();
  // Top-level entry 0 points at the level-1 table; both leaf entries present.
  const Addr top = pb.PteAddr(0, 0);
  const Word top_entry = p.InitValue(top);
  ASSERT_TRUE(MmuConfig::EntryValid(top_entry));
  const Addr table = MmuConfig::EntryTarget(top_entry);
  EXPECT_EQ(p.InitValue(table + 0), MmuConfig::MakeEntry(3));
  EXPECT_EQ(p.InitValue(table + 1), MmuConfig::MakeEntry(4));
}

TEST(Builder, InstToStringCoversOps) {
  EXPECT_EQ(ToString(Inst{.op = Op::kNop}), "nop");
  EXPECT_EQ(ToString(Inst{.op = Op::kDsb}), "dsb sy");
  EXPECT_EQ(ToString(Inst{.op = Op::kDmb, .barrier = BarrierKind::kLd}), "dmb ld");
  const Inst load{.op = Op::kLoad, .rd = 1, .rs = 2, .order = MemOrder::kAcquire};
  EXPECT_EQ(ToString(load), "ldr.acq r1, [r2, #0]");
  const Inst store{.op = Op::kStore, .rs = 3, .rt = 4, .order = MemOrder::kRelease};
  EXPECT_EQ(ToString(store), "str.rel r4, [r3, #0]");
}

using BuilderDeath = ::testing::Test;

TEST(BuilderDeath, UndefinedLabelAborts) {
  EXPECT_DEATH(
      {
        ProgramBuilder pb("bad");
        pb.NewThread().Jmp("nowhere");
        pb.Build();
      },
      "undefined label");
}

TEST(BuilderDeath, RegionOutsideMemoryAborts) {
  EXPECT_DEATH(
      {
        ProgramBuilder pb("bad");
        pb.MemSize(2);
        pb.AddRegion("r", {5});
        pb.NewThread().Halt();
        pb.Build();
      },
      "region cell outside memory");
}

}  // namespace
}  // namespace vrm
