// Reproduction tests for the paper's Examples 1-7 (Section 2).
//
// Each buggy example must exhibit its relaxed outcome on the Promising-Arm
// machine and not on the SC machine; each fixed variant must refine SC.

#include "src/litmus/paper_examples.h"

#include <gtest/gtest.h>

#include "src/litmus/litmus.h"
#include "src/vrm/refinement.h"

namespace vrm {
namespace {

// Example 1: out-of-order write. RM allows r0 = r1 = 1.
TEST(Example1, RelaxedOutcomeOnRmOnly) {
  const LitmusTest test = Example1OutOfOrderWrite(/*fixed=*/false);
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  const auto both_one = [](const Outcome& o) { return o.regs[0] == 1 && o.regs[1] == 1; };
  EXPECT_FALSE(AnyOutcome(sc, both_one)) << sc.Describe(test.program);
  EXPECT_TRUE(AnyOutcome(rm, both_one)) << rm.Describe(test.program);
  // SC behaviours are a subset of RM behaviours.
  EXPECT_TRUE(OutcomesBeyond(sc, rm).empty());
}

TEST(Example1, DmbRestoresScBehaviour) {
  const RefinementResult result = CheckRefinement(Example1OutOfOrderWrite(/*fixed=*/true));
  EXPECT_TRUE(result.status.holds) << result.Describe(Example1OutOfOrderWrite(true).program);
}

// Example 2: VM booting. The unbarriered ticket lock hands out duplicate vmids
// on RM hardware (CPU 2's spin-loop read speculation).
TEST(Example2, DuplicateVmidsOnRmOnly) {
  const LitmusTest test = Example2VmBooting(/*fixed=*/false);
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  const auto duplicate = [](const Outcome& o) { return o.regs[0] == o.regs[1]; };
  EXPECT_FALSE(AnyOutcome(sc, duplicate)) << sc.Describe(test.program);
  EXPECT_TRUE(AnyOutcome(rm, duplicate)) << rm.Describe(test.program);
}

TEST(Example2, Figure7LockIsCorrectOnRm) {
  const LitmusTest test = Example2VmBooting(/*fixed=*/true);
  const RefinementResult result = CheckRefinement(test);
  EXPECT_TRUE(result.status.holds) << result.Describe(test.program);
  // Every RM execution hands out unique vmids 0 and 1.
  for (const auto& [key, outcome] : result.rm.outcomes) {
    (void)key;
    EXPECT_NE(outcome.regs[0], outcome.regs[1]);
    EXPECT_EQ(outcome.regs[0] + outcome.regs[1], 1u);
  }
}

// Example 3: VM context switch. RM allows restoring a stale context (r1 = 0
// with the INACTIVE flag observed).
TEST(Example3, StaleContextOnRmOnly) {
  const LitmusTest test = Example3VmContextSwitch(/*fixed=*/false);
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  const auto stale = [](const Outcome& o) { return o.regs[0] == 1 && o.regs[1] == 0; };
  EXPECT_FALSE(AnyOutcome(sc, stale));
  EXPECT_TRUE(AnyOutcome(rm, stale)) << rm.Describe(test.program);
}

TEST(Example3, ReleaseAcquireRestoresScBehaviour) {
  const LitmusTest test = Example3VmContextSwitch(/*fixed=*/true);
  const RefinementResult result = CheckRefinement(test);
  EXPECT_TRUE(result.status.holds) << result.Describe(test.program);
  // The restored context is never stale: whenever INACTIVE was observed, the
  // saved value 7 is read.
  for (const auto& [key, outcome] : result.rm.outcomes) {
    (void)key;
    if (outcome.regs[0] == 1) {
      EXPECT_EQ(outcome.regs[1], 7u);
    }
  }
}

// Example 4: out-of-order page table reads through the MMU.
TEST(Example4, OutOfOrderPtReadsOnRmOnly) {
  const LitmusTest test = Example4PageTableReads();
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  const auto reordered = [](const Outcome& o) { return o.regs[0] == 1 && o.regs[1] == 0; };
  EXPECT_FALSE(AnyOutcome(sc, reordered)) << sc.Describe(test.program);
  EXPECT_TRUE(AnyOutcome(rm, reordered)) << rm.Describe(test.program);
}

// Example 5: out-of-order page table writes expose physical page p (value 7).
TEST(Example5, LeakedPageOnRmOnly) {
  const LitmusTest test = Example5PageTableWrites(/*transactional=*/false);
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  const auto leaked = [](const Outcome& o) { return o.regs[0] == 7; };
  EXPECT_FALSE(AnyOutcome(sc, leaked)) << sc.Describe(test.program);
  EXPECT_TRUE(AnyOutcome(rm, leaked)) << rm.Describe(test.program);
  // On SC the walk either uses the old table (5) or faults — the paper's text.
  for (const auto& [key, outcome] : sc.outcomes) {
    (void)key;
    EXPECT_TRUE(outcome.regs[0] == 5 || outcome.regs[0] == kFaultValue);
  }
}

TEST(Example5, TransactionalOrderRefinesSc) {
  const LitmusTest test = Example5PageTableWrites(/*transactional=*/true);
  const RefinementResult result = CheckRefinement(test);
  EXPECT_TRUE(result.status.holds) << result.Describe(test.program);
  // Every observable result is before (fault: the PGD starts empty) or after.
  for (const auto& [key, outcome] : result.rm.outcomes) {
    (void)key;
    EXPECT_TRUE(outcome.regs[0] == 7 || outcome.regs[0] == kFaultValue);
  }
}

// Example 6: stale TLB refill after an invalidation without DSB.
namespace {

bool StaleTlbSurvives(const Outcome& outcome) {
  // Post-state of the paper: memory unmapped but CPU 2's TLB still maps the
  // page (entry value encodes the old frame).
  if (outcome.locs[0] != MmuConfig::kEmpty) {
    return false;
  }
  for (const auto& [vpage, entry] : outcome.tlbs[1]) {
    if (vpage == 0 && MmuConfig::EntryValid(entry) &&
        MmuConfig::EntryTarget(entry) == kEx6DataPage) {
      return true;
    }
  }
  return false;
}

}  // namespace

TEST(Example6, StaleTlbOnRmOnly) {
  const LitmusTest test = Example6TlbInvalidation(/*fixed=*/false);
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  EXPECT_FALSE(AnyOutcome(sc, StaleTlbSurvives)) << sc.Describe(test.program);
  EXPECT_TRUE(AnyOutcome(rm, StaleTlbSurvives)) << rm.Describe(test.program);
}

TEST(Example6, DsbTlbiDsbPreventsStaleTlb) {
  const LitmusTest test = Example6TlbInvalidation(/*fixed=*/true);
  const ExploreResult rm = RunPromising(test);
  // No execution leaves a stale TLB entry behind the completed invalidation.
  EXPECT_FALSE(AnyOutcome(rm, StaleTlbSurvives)) << rm.Describe(test.program);
  // Each individual user access still sees only {before, after(fault)} — the
  // page-table-state guarantee of Section 4.2. (Access *sequences* may differ
  // from SC: user programs are exempt from the theorem, see DESIGN.md.)
  for (const auto& [key, outcome] : rm.outcomes) {
    (void)key;
    EXPECT_TRUE(outcome.regs[0] == kEx6DataValue || outcome.regs[0] == kFaultValue);
    EXPECT_TRUE(outcome.regs[1] == kEx6DataValue || outcome.regs[1] == kFaultValue);
  }
  // The kernel-observable state (the PTE cell) refines SC.
  const ExploreResult sc = RunSc(test);
  for (const auto& [key, outcome] : rm.outcomes) {
    (void)key;
    EXPECT_EQ(outcome.locs[0], MmuConfig::kEmpty);
  }
  (void)sc;
}

// Example 7: user -> kernel information flow.
TEST(Example7, KernelObservesUserRmBehaviour) {
  const LitmusTest test = Example7UserKernelFlow(/*oracle=*/false);
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  const auto div_zero = [](const Outcome& o) { return o.regs[0] == 0; };
  EXPECT_FALSE(AnyOutcome(sc, div_zero)) << sc.Describe(test.program);
  EXPECT_TRUE(AnyOutcome(rm, div_zero)) << rm.Describe(test.program);
}

// Theorem 4: the kernel piece's RM behaviours are covered by SC executions with
// some deterministic user program Q' writing the required value.
TEST(Example7, WeakMemoryIsolationCoversKernelBehaviours) {
  const LitmusTest with_user = Example7UserKernelFlow(/*oracle=*/true);
  std::vector<LitmusTest> havoc;
  for (Word z = 0; z <= 2; ++z) {
    havoc.push_back(Example7KernelWithHavocUser(z));
  }
  const WeakIsolationResult result = CheckWeakIsolationRefinement(with_user, havoc);
  EXPECT_TRUE(result.status.holds);
  for (const std::string& missing : result.uncovered) {
    ADD_FAILURE() << "uncovered RM behaviour: " << missing;
  }
}

// Every buggy example demonstrates an RM-only behaviour (gallery sweep).
TEST(AllExamples, EveryBuggyExampleHasRmOnlyBehaviour) {
  for (const LitmusTest& test : AllBuggyExamples()) {
    const RefinementResult result = CheckRefinement(test);
    EXPECT_FALSE(result.status.holds) << test.program.name << " unexpectedly refines SC";
  }
}

}  // namespace
}  // namespace vrm
