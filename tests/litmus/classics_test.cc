// Validation of the Promising-Arm machine against the canonical Armv8 litmus
// results (allowed/forbidden verdicts from Pulte et al. 2017/2019). These tests
// pin the model's fidelity: if the machine drifted (lost a relaxation or gained
// an unsound one), one of these verdicts would flip.

#include "src/litmus/classics.h"

#include <gtest/gtest.h>

#include <functional>

#include "src/model/outcome.h"

namespace vrm {
namespace {

struct ClassicCase {
  const char* name;
  std::function<LitmusTest()> make;
  std::function<bool(const Outcome&)> relaxed;  // the outcome of interest
  bool allowed_on_rm;
  bool allowed_on_sc;
};

class ClassicLitmus : public ::testing::TestWithParam<ClassicCase> {};

TEST_P(ClassicLitmus, VerdictMatchesArmv8) {
  const ClassicCase& c = GetParam();
  const LitmusTest test = c.make();
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  EXPECT_EQ(AnyOutcome(rm, c.relaxed), c.allowed_on_rm)
      << test.program.name << " on Promising-Arm:\n"
      << rm.Describe(test.program);
  EXPECT_EQ(AnyOutcome(sc, c.relaxed), c.allowed_on_sc)
      << test.program.name << " on SC:\n"
      << sc.Describe(test.program);
  // SC is always a subset of RM.
  EXPECT_TRUE(OutcomesBeyond(sc, rm).empty()) << test.program.name;
}

const auto kBothZero = [](const Outcome& o) { return o.regs[0] == 0 && o.regs[1] == 0; };
const auto kBothOne = [](const Outcome& o) { return o.regs[0] == 1 && o.regs[1] == 1; };
const auto kOneThenZero = [](const Outcome& o) { return o.regs[0] == 1 && o.regs[1] == 0; };
const auto kLocsOneOne = [](const Outcome& o) { return o.locs[0] == 1 && o.locs[1] == 1; };
const auto kSShape = [](const Outcome& o) { return o.regs[0] == 1 && o.locs[0] == 2; };
const auto kFinalTwo = [](const Outcome& o) { return o.locs[0] == 2; };
// WRC: T1 saw x, T2 saw y but missed x.
const auto kWrcShape = [](const Outcome& o) {
  return o.regs[0] == 1 && o.regs[1] == 1 && o.regs[2] == 0;
};
// IRIW: the two readers observe the two writes in opposite orders.
const auto kIriwShape = [](const Outcome& o) {
  return o.regs[0] == 1 && o.regs[1] == 0 && o.regs[2] == 1 && o.regs[3] == 0;
};

INSTANTIATE_TEST_SUITE_P(
    Armv8Catalog, ClassicLitmus,
    ::testing::Values(
        // SB: r0=r1=0 allowed relaxed, forbidden with dmb sy.
        ClassicCase{"SB_plain", [] { return ClassicSb(Strength::kPlain); }, kBothZero,
                    true, false},
        ClassicCase{"SB_dmb", [] { return ClassicSb(Strength::kDmb); }, kBothZero,
                    false, false},
        // SB with release/acquire: forbidden — Armv8's STLR/LDAR are RCsc (an
        // LDAR is ordered after prior STLRs), which is why C++ seq_cst maps to
        // them on Arm.
        ClassicCase{"SB_rel_acq", [] { return ClassicSbRelAcq(); }, kBothZero, false,
                    false},
        // MP: r0=1 (flag seen), r1=0 (payload missed).
        ClassicCase{"MP_plain",
                    [] { return ClassicMp(Strength::kPlain, Strength::kPlain); },
                    kOneThenZero, true, false},
        ClassicCase{"MP_dmb_dmbld",
                    [] { return ClassicMp(Strength::kDmb, Strength::kDmbLd); },
                    kOneThenZero, false, false},
        ClassicCase{"MP_dmb_dmb",
                    [] { return ClassicMp(Strength::kDmb, Strength::kDmb); },
                    kOneThenZero, false, false},
        ClassicCase{"MP_rel_acq",
                    [] { return ClassicMp(Strength::kAcqRel, Strength::kAcqRel); },
                    kOneThenZero, false, false},
        ClassicCase{"MP_dmb_addr",
                    [] { return ClassicMp(Strength::kDmb, Strength::kAddrDep); },
                    kOneThenZero, false, false},
        // Writer barrier alone does not save the reader.
        ClassicCase{"MP_dmb_plain",
                    [] { return ClassicMp(Strength::kDmb, Strength::kPlain); },
                    kOneThenZero, true, false},
        // Reader dependency alone does not save the writer.
        ClassicCase{"MP_plain_addr",
                    [] { return ClassicMp(Strength::kPlain, Strength::kAddrDep); },
                    kOneThenZero, true, false},
        // LB: r0=r1=1 allowed with independent writes, forbidden with data
        // dependencies on both sides (no out-of-thin-air) or dmb.
        ClassicCase{"LB_plain", [] { return ClassicLb(Strength::kPlain); }, kBothOne,
                    true, false},
        ClassicCase{"LB_data", [] { return ClassicLb(Strength::kDataDep); }, kBothOne,
                    false, false},
        ClassicCase{"LB_dmb", [] { return ClassicLb(Strength::kDmb); }, kBothOne,
                    false, false},
        // Coherence: new-then-old reads of one location are forbidden even
        // relaxed; two same-thread writes commit in order.
        ClassicCase{"CoRR", [] { return ClassicCoRR(); }, kOneThenZero, false, false},
        ClassicCase{"CoWW", [] { return ClassicCoWW(); }, kFinalTwo, true, true},
        // 2+2W: both locations ending at 1 requires reordering.
        ClassicCase{"W2plus2_plain", [] { return Classic2Plus2W(Strength::kPlain); },
                    kLocsOneOne, true, false},
        ClassicCase{"W2plus2_dmb", [] { return Classic2Plus2W(Strength::kDmb); },
                    kLocsOneOne, false, false},
        // WRC: multicopy atomicity + dmb/addr forbids the causality violation;
        // plain is allowed (T2's reads reorder).
        ClassicCase{"WRC_plain",
                    [] { return ClassicWrc(Strength::kPlain, Strength::kPlain); },
                    kWrcShape, true, false},
        ClassicCase{"WRC_dmb_addr",
                    [] { return ClassicWrc(Strength::kDmb, Strength::kAddrDep); },
                    kWrcShape, false, false},
        ClassicCase{"WRC_dmb_dmb",
                    [] { return ClassicWrc(Strength::kDmb, Strength::kDmb); },
                    kWrcShape, false, false},
        // IRIW: the readers disagree about the write order — forbidden with
        // dmb sy readers on multicopy-atomic Armv8, allowed plain.
        ClassicCase{"IRIW_plain", [] { return ClassicIriw(Strength::kPlain); },
                    kIriwShape, true, false},
        ClassicCase{"IRIW_dmb", [] { return ClassicIriw(Strength::kDmb); },
                    kIriwShape, false, false},
        // S: allowed plain, forbidden with dmb writer + data-dependent write.
        ClassicCase{"S_plain", [] { return ClassicS(Strength::kPlain); }, kSShape,
                    true, false},
        ClassicCase{"S_dmb_data", [] { return ClassicS(Strength::kDmb); }, kSShape,
                    false, false}),
    [](const ::testing::TestParamInfo<ClassicCase>& info) { return info.param.name; });

}  // namespace
}  // namespace vrm
