#!/bin/sh
# Nightly differential-fuzzing soak.
#
# Runs a long governed vrm_fuzz campaign, appends the machine-readable
# telemetry to a JSON-lines log, and fails loudly when the campaign finds an
# oracle disagreement (the minimized, replayable artifacts land in
# ARTIFACT_DIR). The deadline keeps the job bounded on slow hosts: a
# deadline-stopped run is still a success, and the emitted stop_cause line
# records which way it ended.
#
# Usage: bench/fuzz_soak.sh [BUILD_DIR] [PROGRAMS] [DEADLINE_SECONDS]
#   BUILD_DIR         build tree containing src/vrm_fuzz     (default: build)
#   PROGRAMS          campaign size                          (default: 10000)
#   DEADLINE_SECONDS  governed wall-clock budget             (default: 5400)
# Environment:
#   SOAK_SEED         master seed                            (default: 1)
#   SOAK_LOG          JSON-lines telemetry log  (default: fuzz_soak.jsonl in .)
#   ARTIFACT_DIR      where disagreement artifacts are written
#                                             (default: fuzz_artifacts in .)
set -eu

BUILD_DIR="${1:-build}"
PROGRAMS="${2:-10000}"
DEADLINE="${3:-5400}"
SEED="${SOAK_SEED:-1}"
LOG="${SOAK_LOG:-fuzz_soak.jsonl}"
ARTIFACTS="${ARTIFACT_DIR:-fuzz_artifacts}"

FUZZ="$BUILD_DIR/src/vrm_fuzz"
if [ ! -x "$FUZZ" ]; then
  echo "error: $FUZZ not found or not executable (build first)" >&2
  exit 2
fi
mkdir -p "$ARTIFACTS"

echo "fuzz soak: $PROGRAMS programs, seed $SEED, deadline ${DEADLINE}s" >&2
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# vrm_fuzz exits 0 on a clean campaign, 1 on an oracle disagreement. Either
# way the telemetry lines are worth keeping.
STATUS=0
"$FUZZ" --programs "$PROGRAMS" --seed "$SEED" --deadline "$DEADLINE" \
  --artifact-dir "$ARTIFACTS" --json fuzz_soak --quiet \
  > "$OUT" 2>&1 || STATUS=$?

cat "$OUT" >&2
grep '^{"bench"' "$OUT" >> "$LOG" || true

if [ "$STATUS" -eq 1 ]; then
  echo "SOAK FAILURE: oracle disagreement — artifacts in $ARTIFACTS" >&2
  ls "$ARTIFACTS" >&2 || true
elif [ "$STATUS" -ne 0 ]; then
  echo "SOAK ERROR: vrm_fuzz exited $STATUS" >&2
fi
exit "$STATUS"
