// JSON-line emission for google-benchmark binaries (see bench/bench_json.h for
// the line shape and rationale).
//
// JsonLineReporter wraps the standard console reporter: the human-readable
// table is printed unchanged, and after each run it appends one JSON line for
// the per-iteration real time (in nanoseconds, regardless of the benchmark's
// display unit) plus one line per user counter. gbench binaries replace
// BENCHMARK_MAIN() with:
//
//   int main(int argc, char** argv) { return vrm::RunBenchmarksWithJson(argc, argv); }

#ifndef BENCH_BENCH_JSON_GBENCH_H_
#define BENCH_BENCH_JSON_GBENCH_H_

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_json.h"

namespace vrm {

class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  // Tabular but uncolored: the console reporter emits its ANSI reset code
  // after the row's newline, which would glue an escape sequence onto the
  // front of the first JSON line and break `grep '^{"bench"'`.
  JsonLineReporter() : benchmark::ConsoleReporter(OO_Tabular) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) {
        continue;
      }
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      EmitBenchJson(run.benchmark_name(), "real_time_ns",
                    run.real_accumulated_time / iters * 1e9);
      for (const auto& [name, counter] : run.counters) {
        EmitBenchJson(run.benchmark_name(), name, counter.value);
      }
    }
  }
};

// Drop-in replacement for BENCHMARK_MAIN()'s body that routes results through
// JsonLineReporter. Keeps all standard --benchmark_* flags working.
inline int RunBenchmarksWithJson(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace vrm

#endif  // BENCH_BENCH_JSON_GBENCH_H_
