// Ablation: barrier placement vs observable relaxed behaviour.
//
// Sweeps the synchronization strength of the paper's key programs and reports,
// for each variant, the SC and Promising-Arm outcome-set sizes, whether the
// relaxed outcome of interest appears, and whether RM refines SC — making the
// role of each barrier in the wDRF conditions quantitative. Also sweeps the
// 3-level vs 4-level stage 2 choice through the cost model (the Section 5.6
// design point).

#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "src/litmus/classics.h"
#include "src/litmus/paper_examples.h"
#include "src/perf/micro_sim.h"
#include "src/support/table.h"
#include "src/vrm/refinement.h"

namespace vrm {
namespace {

void Row(TextTable* table, const char* group, const char* variant,
         const LitmusTest& test, const OutcomePredicate& relaxed) {
  const RefinementResult result = CheckRefinement(test);
  table->AddRow({variant, std::to_string(result.sc.outcomes.size()),
                 std::to_string(result.rm.outcomes.size()),
                 AnyOutcome(result.rm, relaxed) ? "yes" : "no",
                 result.status.holds ? "yes" : "no"});
  const std::string bench = std::string("ablation/") + group + "/" + variant;
  EmitBenchJson(bench, "sc_outcomes", static_cast<double>(result.sc.outcomes.size()));
  EmitBenchJson(bench, "rm_outcomes", static_cast<double>(result.rm.outcomes.size()));
  EmitBenchJson(bench, "relaxed_observed", AnyOutcome(result.rm, relaxed) ? 1 : 0);
  EmitBenchJson(bench, "refines_sc", result.status.holds ? 1 : 0);
}

int Main() {
  std::printf("== Ablation: barrier placement vs relaxed behaviour ==\n\n");

  {
    TextTable table({"gen_vmid lock variant", "SC outcomes", "RM outcomes",
                     "duplicate vmid?", "RM ⊆ SC"});
    const auto duplicate = [](const Outcome& o) { return o.regs[0] == o.regs[1]; };
    Row(&table, "example2_vmid", "plain loads/stores", Example2VmBooting(false), duplicate);
    Row(&table, "example2_vmid", "ldar/stlr (Figure 7)", Example2VmBooting(true), duplicate);
    std::printf("--- Example 2: VM booting ---\n%s\n", table.Render().c_str());
  }
  {
    TextTable table({"vCPU state variant", "SC outcomes", "RM outcomes",
                     "stale context?", "RM ⊆ SC"});
    const auto stale = [](const Outcome& o) { return o.regs[0] == 1 && o.regs[1] == 0; };
    Row(&table, "example3_ctxsw", "plain", Example3VmContextSwitch(false), stale);
    Row(&table, "example3_ctxsw", "stlr INACTIVE / ldar check", Example3VmContextSwitch(true), stale);
    std::printf("--- Example 3: context switch ---\n%s\n", table.Render().c_str());
  }
  {
    TextTable table({"unmap+TLBI variant", "SC outcomes", "RM outcomes",
                     "stale TLB?", "RM ⊆ SC"});
    const auto stale_tlb = [](const Outcome& o) {
      if (o.locs[0] != MmuConfig::kEmpty) {
        return false;
      }
      for (const auto& [vpage, entry] : o.tlbs[1]) {
        if (vpage == 0 && MmuConfig::EntryValid(entry)) {
          return true;
        }
      }
      return false;
    };
    Row(&table, "example6_tlbi", "str; tlbi", Example6TlbInvalidation(false), stale_tlb);
    Row(&table, "example6_tlbi", "str; dsb; tlbi; dsb", Example6TlbInvalidation(true), stale_tlb);
    std::printf("--- Example 6: TLB invalidation ---\n%s\n", table.Render().c_str());
  }
  {
    TextTable table({"MP variant", "SC outcomes", "RM outcomes", "r0=1,r1=0?",
                     "RM ⊆ SC"});
    const auto relaxed = [](const Outcome& o) { return o.regs[0] == 1 && o.regs[1] == 0; };
    Row(&table, "mp", "plain+plain", ClassicMp(Strength::kPlain, Strength::kPlain), relaxed);
    Row(&table, "mp", "dmb+plain", ClassicMp(Strength::kDmb, Strength::kPlain), relaxed);
    Row(&table, "mp", "plain+addr", ClassicMp(Strength::kPlain, Strength::kAddrDep), relaxed);
    Row(&table, "mp", "dmb+addr", ClassicMp(Strength::kDmb, Strength::kAddrDep), relaxed);
    Row(&table, "mp", "dmb+dmb.ld", ClassicMp(Strength::kDmb, Strength::kDmbLd), relaxed);
    Row(&table, "mp", "rel+acq", ClassicMp(Strength::kAcqRel, Strength::kAcqRel), relaxed);
    std::printf("--- Message passing: one barrier is not enough ---\n%s\n",
                table.Render().c_str());
  }

  std::printf("== Ablation: 3-level vs 4-level stage 2 (Section 5.6) ==\n\n");
  TextTable levels({"Platform", "Benchmark", "SeKVM 4-level", "SeKVM 3-level",
                    "saving"});
  for (const Platform& platform : {PlatformM400(), PlatformSeattle()}) {
    for (Micro micro : {Micro::kHypercall, Micro::kIoKernel, Micro::kIoUser,
                        Micro::kVirtualIpi}) {
      SimOptions four;
      four.s2_levels = 4;
      SimOptions three;
      three.s2_levels = 3;
      const auto l4 = SimulateMicro(platform, Hypervisor::kSeKvm, micro, four);
      const auto l3 = SimulateMicro(platform, Hypervisor::kSeKvm, micro, three);
      levels.AddRow({platform.name, ToString(micro),
                     FormatWithCommas(static_cast<int64_t>(l4.cycles)),
                     FormatWithCommas(static_cast<int64_t>(l3.cycles)),
                     FormatDouble(100.0 * (1.0 - static_cast<double>(l3.cycles) /
                                                     static_cast<double>(l4.cycles)),
                                  1) +
                         "%"});
      const std::string bench =
          std::string("ablation/s2_levels/") + platform.name + "/" + ToString(micro);
      EmitBenchJson(bench, "sekvm_4level_cycles", static_cast<double>(l4.cycles));
      EmitBenchJson(bench, "sekvm_3level_cycles", static_cast<double>(l3.cycles));
    }
  }
  std::printf("%s\n", levels.Render().c_str());
  std::printf("Shape check: 3-level stage 2 meaningfully helps only the tiny-TLB\n"
              "m400 — the motivation the paper gives for adding verified 3-level\n"
              "support.\n");
  return 0;
}

}  // namespace
}  // namespace vrm

int main() { return vrm::Main(); }
