// Machine-readable benchmark output.
//
// Every bench binary prints its human-oriented tables/console output as before
// AND one JSON object per result line on stdout, in the fixed shape
//
//   {"bench": "<binary or benchmark name>", "metric": "<what>", "value": <num>}
//
// so CI and the EXPERIMENTS.md tooling can scrape numbers without parsing
// tables: `grep '^{"bench"' out.txt | jq ...`. Snapshots of these lines are
// checked in as BENCH_*.json at the repository root.
//
// This header is dependency-free (plain printf) so the table-regeneration
// binaries can use it without linking google-benchmark; gbench-based binaries
// use the reporter in bench/bench_json_gbench.h, which emits the same shape.

#ifndef BENCH_BENCH_JSON_H_
#define BENCH_BENCH_JSON_H_

#include <cstdio>
#include <string>

namespace vrm {

// Escapes the two characters that could break the fixed-shape JSON line.
// Bench and metric names are ASCII identifiers/paths in practice, so this is
// deliberately minimal rather than a full JSON string encoder.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

// Prints one machine-readable result line. `value` is rendered with %.17g so
// integers survive round-trips exactly and doubles keep full precision.
inline void EmitBenchJson(const std::string& bench, const std::string& metric,
                          double value) {
  std::printf("{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.17g}\n",
              JsonEscape(bench).c_str(), JsonEscape(metric).c_str(), value);
}

}  // namespace vrm

#endif  // BENCH_BENCH_JSON_H_
