// Regenerates Table 1 (proof-effort breakdown) in its reproduction analogue.
//
// The paper counts Coq LOC: the VRM framework (3.4K), the proofs that SeKVM
// satisfies the wDRF conditions (3.8K), and the original SC security proofs
// (34.2K) — the headline being that extending the SC proofs to relaxed memory
// cost an order of magnitude less than the SC proofs themselves. This repo's
// analogue counts C++ LOC per artifact class: the executable VRM framework
// (relaxed/SC machines + condition checkers), the SeKVM-satisfies-wDRF artifact
// (the primitives-as-TinyArm specifications and their checker drivers), and the
// SeKVM system + security-invariant implementation. The *shape* to check: the
// per-system condition artifact is by far the smallest piece — the reusable
// framework carries the weight, as in the paper.
//
// It also re-runs the Section 5.6 version matrix, since Table 1's context is
// "the same proofs cover every KVM version".

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/sekvm/kvm_versions.h"
#include "src/support/table.h"

#ifndef VRM_SOURCE_DIR
#define VRM_SOURCE_DIR "."
#endif

namespace vrm {
namespace {

// Non-empty, non-comment-only lines in .h/.cc files under the given paths.
int64_t CountLoc(const std::vector<std::string>& relative_paths) {
  namespace fs = std::filesystem;
  int64_t lines = 0;
  for (const std::string& rel : relative_paths) {
    const fs::path root = fs::path(VRM_SOURCE_DIR) / rel;
    std::error_code ec;
    if (!fs::exists(root, ec)) {
      continue;
    }
    std::vector<fs::path> files;
    if (fs::is_regular_file(root)) {
      files.push_back(root);
    } else {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (entry.is_regular_file() && (entry.path().extension() == ".h" ||
                                        entry.path().extension() == ".cc")) {
          files.push_back(entry.path());
        }
      }
    }
    for (const fs::path& file : files) {
      std::ifstream in(file);
      std::string line;
      while (std::getline(in, line)) {
        const size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos) {
          continue;
        }
        if (line.compare(first, 2, "//") == 0) {
          continue;
        }
        ++lines;
      }
    }
  }
  return lines;
}

int Main() {
  std::printf("== Table 1: LOC breakdown ==\n\n");
  TextTable paper({"Proof", "Coq LOC"});
  paper.AddRow({"VRM sufficiency of wDRF conditions", "3.4K"});
  paper.AddRow({"SeKVM satisfies wDRF conditions", "3.8K"});
  paper.AddRow({"SeKVM's security guarantees on SC", "34.2K"});
  std::printf("Paper (SOSP'21 Table 1):\n%s\n", paper.Render().c_str());

  const int64_t framework =
      CountLoc({"src/model", "src/vrm", "src/arch", "src/mem", "src/mmu",
                "src/litmus/litmus.h", "src/litmus/litmus.cc"});
  const int64_t satisfies = CountLoc({"src/sekvm/tinyarm_primitives.h",
                                      "src/sekvm/tinyarm_primitives.cc",
                                      "tests/vrm/conditions_test.cc",
                                      "tests/vrm/txn_pt_test.cc"});
  const int64_t system = CountLoc({"src/sekvm"}) -
                         CountLoc({"src/sekvm/tinyarm_primitives.h",
                                   "src/sekvm/tinyarm_primitives.cc"});

  TextTable ours({"Artifact (this reproduction)", "C++ LOC"});
  ours.AddRow({"VRM framework (RM/SC machines + condition checkers)",
               FormatWithCommas(framework)});
  ours.AddRow({"SeKVM satisfies wDRF (primitive specs + checker drivers)",
               FormatWithCommas(satisfies)});
  ours.AddRow({"SeKVM system + security invariants", FormatWithCommas(system)});
  std::printf("This reproduction:\n%s\n", ours.Render().c_str());
  EmitBenchJson("table1_effort", "framework_loc", static_cast<double>(framework));
  EmitBenchJson("table1_effort", "satisfies_wdrf_loc", static_cast<double>(satisfies));
  EmitBenchJson("table1_effort", "system_loc", static_cast<double>(system));
  if (framework > 0 && satisfies > 0) {
    std::printf("Shape check: the per-system condition artifact (%lld LOC) is the\n"
                "smallest piece — %.1fx smaller than the framework it reuses — \n"
                "mirroring the paper's order-of-magnitude effort reduction.\n\n",
                static_cast<long long>(satisfies),
                static_cast<double>(framework) / static_cast<double>(satisfies));
  }

  std::printf("== Section 5.6: the same artifact covers every KVM version ==\n");
  TextTable matrix({"Linux", "Stage 2", "Boot", "Lifecycle", "Invariants",
                    "Attacks rejected"});
  for (const VersionCheckResult& result : VerifyVersionMatrix()) {
    matrix.AddRow({result.linux_version, std::to_string(result.s2_levels) + "-level",
                   result.boot_ok ? "ok" : "FAIL",
                   result.lifecycle_ok ? "ok" : "FAIL",
                   result.invariants_ok ? "ok" : "FAIL",
                   result.attacks_rejected ? "ok" : "FAIL"});
  }
  std::printf("%s", matrix.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace vrm

int main() { return vrm::Main(); }
