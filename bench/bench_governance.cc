// Governance overhead: governed vs ungoverned verification runs.
//
// The run-governance layer (src/support/governance.h) promises that putting a
// run under a RunGovernor — deadline + memory budget polled every
// kGovernorPollStride expansions per worker — costs under 2% on real
// workloads, and that an ungoverned run pays only a pointer test. This bench measures both claims on the paper's
// ticket-lock kernel (VerifyKernel walk pair) and the default litmus suite
// (RunLitmusBatch), then demonstrates the deadline path: a tightly budgeted
// ticket-lock run must stop early with a well-formed bounded result and the
// exact cause. Recorded numbers live in EXPERIMENTS.md and
// BENCH_governance.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/engine/verify_kernel.h"
#include "src/litmus/batch.h"
#include "src/model/explorer.h"
#include "src/sekvm/tinyarm_primitives.h"
#include "src/support/governance.h"
#include "src/support/table.h"

namespace vrm {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

// A budget generous enough that the governed run never stops early: the
// measurement isolates the per-expansion polling cost, not the stop path.
GovernanceOptions GenerousBudget() {
  GovernanceOptions governance;
  governance.budget.deadline_seconds = 3600;
  governance.budget.soft_memory_bytes = 1ull << 40;
  return governance;
}

void BenchVerifyKernel(TextTable* table, int iters) {
  const KernelSpec spec = GenVmidKernelSpec(true);
  double bare_ms = 0.0, governed_ms = 0.0;
  uint64_t states = 0;
  bool agree = true;
  for (int i = 0; i < iters; ++i) {
    const auto bare_start = std::chrono::steady_clock::now();
    const KernelVerification bare = VerifyKernel(spec);
    const double bare_t = MsSince(bare_start);

    const auto governed_start = std::chrono::steady_clock::now();
    const KernelVerification governed = VerifyKernel(spec, GenerousBudget());
    const double governed_t = MsSince(governed_start);

    if (i == 0 || bare_t < bare_ms) bare_ms = bare_t;
    if (i == 0 || governed_t < governed_ms) governed_ms = governed_t;
    states = governed.refinement.rm.stats.states;
    agree &= governed.refinement.status == bare.refinement.status &&
             governed.refinement.rm.stats.states == bare.refinement.rm.stats.states &&
             governed.refinement.rm.stats.stop_cause == StopCause::kNone;
  }
  const double overhead_pct = (governed_ms / bare_ms - 1.0) * 100.0;
  table->AddRow({"verify_kernel/ticket_lock", FormatDouble(bare_ms, 2),
                 FormatDouble(governed_ms, 2), FormatDouble(overhead_pct, 2) + "%",
                 std::to_string(states), agree ? "yes" : "NO"});
  const std::string bench = "governance/verify_kernel_ticket_lock";
  EmitBenchJson(bench, "ungoverned_ms", bare_ms);
  EmitBenchJson(bench, "governed_ms", governed_ms);
  EmitBenchJson(bench, "overhead_pct", overhead_pct);
  EmitBenchJson(bench, "rm_states_expanded", static_cast<double>(states));
  EmitBenchJson(bench, "results_agree", agree ? 1 : 0);
}

void BenchLitmusBatch(TextTable* table, int iters) {
  const std::vector<LitmusTest> suite = DefaultLitmusSuite();
  double bare_ms = 0.0, governed_ms = 0.0;
  uint64_t states = 0;
  bool agree = true;
  for (int i = 0; i < iters; ++i) {
    const auto bare_start = std::chrono::steady_clock::now();
    const BatchResult bare = RunLitmusBatch(suite, /*num_threads=*/0);
    const double bare_t = MsSince(bare_start);

    BatchOptions options;
    options.num_threads = 0;
    options.governance = GenerousBudget();
    const auto governed_start = std::chrono::steady_clock::now();
    const BatchResult governed = RunLitmusBatch(suite, options);
    const double governed_t = MsSince(governed_start);

    if (i == 0 || bare_t < bare_ms) bare_ms = bare_t;
    if (i == 0 || governed_t < governed_ms) governed_ms = governed_t;
    states = 0;
    for (size_t e = 0; e < governed.entries.size(); ++e) {
      states += governed.entries[e].rm.stats.states +
                governed.entries[e].sc.stats.states;
      agree &= governed.entries[e].status == bare.entries[e].status &&
               governed.entries[e].stop_cause() == StopCause::kNone;
    }
  }
  const double overhead_pct = (governed_ms / bare_ms - 1.0) * 100.0;
  table->AddRow({"litmus_batch/default_suite", FormatDouble(bare_ms, 2),
                 FormatDouble(governed_ms, 2), FormatDouble(overhead_pct, 2) + "%",
                 std::to_string(states), agree ? "yes" : "NO"});
  const std::string bench = "governance/litmus_batch_default_suite";
  EmitBenchJson(bench, "ungoverned_ms", bare_ms);
  EmitBenchJson(bench, "governed_ms", governed_ms);
  EmitBenchJson(bench, "overhead_pct", overhead_pct);
  EmitBenchJson(bench, "total_states_expanded", static_cast<double>(states));
  EmitBenchJson(bench, "results_agree", agree ? 1 : 0);
}

// The stop path: a deadline far below the ticket-lock run's natural wall
// clock must cut it short with the exact cause and a heartbeat stream.
void DemonstrateDeadlineStop() {
  GovernanceOptions governance;
  governance.budget.deadline_seconds = 0.01;
  governance.telemetry.interval_seconds = 0.001;
  governance.telemetry.run_name = "ticket_lock_deadline";
  std::atomic<uint64_t> heartbeats{0};
  governance.telemetry.sink = [&](const std::string& event) {
    heartbeats.fetch_add(event.find("\"event\": \"heartbeat\"") != std::string::npos
                             ? 1
                             : 0);
  };
  const auto start = std::chrono::steady_clock::now();
  const KernelVerification v = VerifyKernel(GenVmidKernelSpec(true), governance);
  const double wall_ms = MsSince(start);
  // The RM walk dominates the ticket lock's wall clock, so the deadline must
  // land there. The SC walk either hits the same latched deadline or ends on
  // its own (for this spin-lock kernel it is always step-bounded by
  // max_steps_per_thread, a truncation with stop_cause kNone) — what would
  // falsify the demo is the governor stopping a walk for any cause other
  // than the deadline, or the verdict failing to come back bounded.
  const bool stopped_on_deadline =
      v.refinement.rm.stats.stop_cause == StopCause::kDeadline &&
      (v.refinement.sc.stats.stop_cause == StopCause::kDeadline ||
       v.refinement.sc.stats.stop_cause == StopCause::kNone) &&
      v.refinement.status.truncated;
  std::printf("deadline stop: 10ms budget -> run ended after %.1fms, cause "
              "rm=%s sc=%s, %llu heartbeats, bounded=%s\n",
              wall_ms, StopCauseName(v.refinement.rm.stats.stop_cause),
              StopCauseName(v.refinement.sc.stats.stop_cause),
              static_cast<unsigned long long>(heartbeats.load()),
              v.refinement.status.truncated ? "yes" : "NO");
  const std::string bench = "governance/deadline_stop_ticket_lock";
  EmitBenchJson(bench, "budget_ms", 10.0);
  EmitBenchJson(bench, "wall_ms", wall_ms);
  EmitBenchJson(bench, "stopped_on_deadline", stopped_on_deadline ? 1 : 0);
  EmitBenchJson(bench, "bounded_verdict", v.refinement.status.truncated ? 1 : 0);
  EmitBenchJson(bench, "heartbeats", static_cast<double>(heartbeats.load()));
}

int Main(int argc, char** argv) {
  // bench-smoke runs `bench_governance 1`; measurement runs use the default 5.
  const int iters = argc > 1 ? std::atoi(argv[1]) : 5;

  std::printf("== Run governance overhead: governed vs ungoverned ==\n");
  std::printf("(generous budget, so the governed run polls throughout "
              "but never stops; best of %d)\n\n", iters);

  TextTable table({"workload", "ungoverned ms", "governed ms", "overhead",
                   "states", "results agree"});
  BenchVerifyKernel(&table, iters);
  BenchLitmusBatch(&table, iters);
  std::printf("%s\n", table.Render().c_str());
  DemonstrateDeadlineStop();
  std::printf("\nGoverned runs add one relaxed counter bump per expanded "
              "state plus one clock read and a few compares every %u "
              "expansions; the target is <2%% overhead on the ticket-lock "
              "walk pair.\n", kGovernorPollStride);
  return 0;
}

}  // namespace
}  // namespace vrm

int main(int argc, char** argv) { return vrm::Main(argc, argv); }
