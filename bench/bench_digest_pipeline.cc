// The digest-pipeline benchmark: serialize-then-hash (the historical explorer)
// vs zero-allocation streaming digests (src/model/explorer.h today).
//
// LegacyExplore below is a faithful in-binary replica of the pre-streaming
// sequential explorer: every dedup key is computed by materializing the full
// canonical serialization as a std::string and hashing it
// (StateDigest(machine.Serialize(state))), and every expansion allocates a
// fresh successor vector instead of reusing the slot pool. The streaming
// engine is the real ExploreSequential. Both are run on the same workloads and
// the speedup benchmarks time the two engines back to back on separate machine
// instances (the Promising machine memoizes certification searches, so sharing
// an instance would hand the second engine warm caches).
//
// Outcome-set equality between the engines is asserted on every iteration —
// a faster explorer that changed verdicts would be worthless.
//
// `states_per_sec` counters are the EXPERIMENTS.md acceptance metric: the
// streaming engine must clear 1.5x legacy states/sec on at least one litmus
// workload.

#include <benchmark/benchmark.h>

#include <chrono>
#include <unordered_set>
#include <vector>

#include "bench/bench_json_gbench.h"
#include "src/litmus/classics.h"
#include "src/litmus/paper_examples.h"
#include "src/model/explorer.h"
#include "src/model/promising_machine.h"
#include "src/model/sc_machine.h"

namespace vrm {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The pre-streaming sequential explorer, reproduced byte for byte where it
// matters: string-materializing digests and a fresh successor vector per
// expansion. (The machines' internal scratch reuse is shared with the modern
// engine — it cannot be switched off — so the measured difference isolates the
// digest pipeline and the explorer-side allocation behaviour.)
template <typename Machine>
ExploreResult LegacyExplore(const Machine& machine, const ModelConfig& config) {
  ExploreResult result;
  std::unordered_set<Digest128, DigestHash> seen;
  std::vector<typename Machine::State> stack;

  stack.push_back(machine.Initial());
  seen.insert(StateDigest(machine.Serialize(stack.back())));

  while (!stack.empty()) {
    if (seen.size() >= config.max_states) {
      result.stats.truncated = true;
      break;
    }
    typename Machine::State state = std::move(stack.back());
    stack.pop_back();
    ++result.stats.states;

    if (machine.IsTerminal(state)) {
      machine.AuditTerminal(state, &result);
      Outcome outcome = machine.Extract(state);
      result.outcomes.Add(std::move(outcome));
      continue;
    }

    std::vector<typename Machine::State> next;  // fresh allocation, the old way
    const size_t count = machine.Successors(state, &next, &result);
    result.stats.transitions += count;
    for (size_t i = 0; i < count; ++i) {
      const std::string bytes = machine.Serialize(next[i]);
      result.stats.digest_bytes += bytes.size();
      if (seen.insert(StateDigest(bytes)).second) {
        stack.push_back(std::move(next[i]));
      }
    }
  }
  return result;
}

template <typename Machine>
void EnginePass(benchmark::State& state, const LitmusTest& test, bool streaming) {
  uint64_t states = 0;
  for (auto _ : state) {
    Machine machine(test.program, test.config);
    const ExploreResult result = streaming ? ExploreSequential(machine, test.config)
                                           : LegacyExplore(machine, test.config);
    states = result.stats.states;
    benchmark::DoNotOptimize(result.outcomes.size());
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsIterationInvariantRate);
}

// Times legacy and streaming back to back each iteration and reports the
// states/sec ratio directly, so the acceptance number comes from one process
// under identical conditions.
template <typename Machine>
void SpeedupPass(benchmark::State& state, const LitmusTest& test) {
  double legacy_seconds = 0.0;
  double streaming_seconds = 0.0;
  for (auto _ : state) {
    Machine legacy_machine(test.program, test.config);
    const auto legacy_start = Clock::now();
    const ExploreResult legacy = LegacyExplore(legacy_machine, test.config);
    legacy_seconds += SecondsSince(legacy_start);

    Machine streaming_machine(test.program, test.config);
    const auto streaming_start = Clock::now();
    const ExploreResult fast = ExploreSequential(streaming_machine, test.config);
    streaming_seconds += SecondsSince(streaming_start);

    if (legacy.outcomes.size() != fast.outcomes.size() ||
        legacy.stats.states != fast.stats.states) {
      state.SkipWithError("streaming explorer diverged from legacy explorer");
      break;
    }
    benchmark::DoNotOptimize(fast.outcomes.size());
  }
  if (streaming_seconds > 0.0) {
    state.counters["speedup"] = legacy_seconds / streaming_seconds;
  }
}

void BM_DigestPipeline_ScMp(benchmark::State& state) {
  EnginePass<ScMachine>(state, ClassicMp(Strength::kPlain, Strength::kPlain),
                        state.range(0) == 1);
}
BENCHMARK(BM_DigestPipeline_ScMp)->Arg(0)->Arg(1)->ArgName("streaming");

void BM_DigestPipeline_ScIriw(benchmark::State& state) {
  EnginePass<ScMachine>(state, ClassicIriw(Strength::kPlain), state.range(0) == 1);
}
BENCHMARK(BM_DigestPipeline_ScIriw)->Arg(0)->Arg(1)->ArgName("streaming");

void BM_DigestPipeline_PromisingMp(benchmark::State& state) {
  EnginePass<PromisingMachine>(state, ClassicMp(Strength::kPlain, Strength::kPlain),
                               state.range(0) == 1);
}
BENCHMARK(BM_DigestPipeline_PromisingMp)->Arg(0)->Arg(1)->ArgName("streaming");

void BM_DigestPipeline_PromisingExample1(benchmark::State& state) {
  EnginePass<PromisingMachine>(state, Example1OutOfOrderWrite(false),
                               state.range(0) == 1);
}
BENCHMARK(BM_DigestPipeline_PromisingExample1)
    ->Arg(0)->Arg(1)->ArgName("streaming")->Unit(benchmark::kMillisecond);

void BM_DigestPipeline_PromisingTicketLock(benchmark::State& state) {
  // The gen_vmid ticket lock — the heaviest routinely-explored workload, and
  // the one EXPERIMENTS.md tracks for the before/after states/sec comparison
  // against the pre-streaming bench_model_explore numbers.
  EnginePass<PromisingMachine>(state, Example2VmBooting(true), state.range(0) == 1);
}
BENCHMARK(BM_DigestPipeline_PromisingTicketLock)
    ->Arg(0)->Arg(1)->ArgName("streaming")->Unit(benchmark::kMillisecond);

// Parallel engine throughput on the streaming path (the legacy explorer was
// sequential-only, so there is no legacy arm here). On a 1-CPU host the
// workers timeshare; the interesting numbers come from multicore hosts.
void BM_DigestPipeline_ParallelTicketLock(benchmark::State& state) {
  LitmusTest test = Example2VmBooting(true);
  test.config.num_threads = static_cast<int>(state.range(0));
  uint64_t states = 0;
  for (auto _ : state) {
    PromisingMachine machine(test.program, test.config);
    const ExploreResult result = Explore(machine, test.config);
    states = result.stats.states;
    benchmark::DoNotOptimize(result.outcomes.size());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DigestPipeline_ParallelTicketLock)
    ->Arg(1)->Arg(2)->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DigestSpeedup_ScMp(benchmark::State& state) {
  SpeedupPass<ScMachine>(state, ClassicMp(Strength::kPlain, Strength::kPlain));
}
BENCHMARK(BM_DigestSpeedup_ScMp);

void BM_DigestSpeedup_ScIriw(benchmark::State& state) {
  SpeedupPass<ScMachine>(state, ClassicIriw(Strength::kPlain));
}
BENCHMARK(BM_DigestSpeedup_ScIriw);

void BM_DigestSpeedup_PromisingExample1(benchmark::State& state) {
  SpeedupPass<PromisingMachine>(state, Example1OutOfOrderWrite(false));
}
BENCHMARK(BM_DigestSpeedup_PromisingExample1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vrm

int main(int argc, char** argv) { return vrm::RunBenchmarksWithJson(argc, argv); }
