// Parallel-explorer scaling: wall-clock of Explore() at 1/2/4/8 workers on the
// heaviest routinely-explored workloads, plus the litmus batch runner. Every
// benchmark times its own 1-thread baseline (outside the measured loop) and
// reports `speedup` = sequential wall-clock / parallel wall-clock; outcome-set
// equality with the sequential engine is asserted on every iteration (a scaling
// win that changed verdicts would be worthless).
//
// Wall-clock speedup requires actual hardware parallelism: on a 1-CPU host the
// workers timeshare and speedup stays ~1.0x (the interesting numbers come from
// multicore hosts; see EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench/bench_json_gbench.h"
#include "src/litmus/batch.h"
#include "src/litmus/classics.h"
#include "src/litmus/paper_examples.h"
#include "src/model/explorer.h"
#include "src/model/promising_machine.h"
#include "src/model/sc_machine.h"
#include "src/vrm/refinement.h"

namespace vrm {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Machine>
void ExploreScaling(benchmark::State& state, const LitmusTest& test) {
  ModelConfig sequential = test.config;
  sequential.num_threads = 1;
  Machine reference_machine(test.program, sequential);
  const auto baseline_start = Clock::now();
  const ExploreResult reference = Explore(reference_machine, sequential);
  const double baseline_seconds = SecondsSince(baseline_start);

  ModelConfig config = test.config;
  config.num_threads = static_cast<int>(state.range(0));
  double total_seconds = 0.0;
  int64_t iterations = 0;
  for (auto _ : state) {
    const auto start = Clock::now();
    Machine machine(test.program, config);
    const ExploreResult result = Explore(machine, config);
    total_seconds += SecondsSince(start);
    ++iterations;
    if (result.outcomes.size() != reference.outcomes.size()) {
      state.SkipWithError("parallel outcome set diverged from sequential");
      break;
    }
    benchmark::DoNotOptimize(result.outcomes.size());
  }
  if (iterations > 0 && total_seconds > 0.0) {
    state.counters["speedup"] = baseline_seconds / (total_seconds / iterations);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["states"] = static_cast<double>(reference.stats.states);
}

// The gen_vmid ticket lock (Example 2, fixed form) — the heaviest
// routinely-explored Promising workload in the tree.
void BM_ParallelExplore_TicketLock(benchmark::State& state) {
  ExploreScaling<PromisingMachine>(state, Example2VmBooting(true));
}
BENCHMARK(BM_ParallelExplore_TicketLock)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// IRIW with plain readers: four threads, the widest interleaving fan-out of the
// classics catalog, on the Promising machine.
void BM_ParallelExplore_Iriw(benchmark::State& state) {
  ExploreScaling<PromisingMachine>(state, ClassicIriw(Strength::kPlain));
}
BENCHMARK(BM_ParallelExplore_Iriw)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Refinement check of the fixed ticket lock: SC and Promising explorations run
// concurrently with each other, and each goes `threads` wide.
void BM_ParallelRefinement_TicketLock(benchmark::State& state) {
  LitmusTest test = Example2VmBooting(true);
  test.config.num_threads = 1;
  const auto baseline_start = Clock::now();
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  const double baseline_seconds = SecondsSince(baseline_start);
  benchmark::DoNotOptimize(sc.outcomes.size() + rm.outcomes.size());

  test.config.num_threads = static_cast<int>(state.range(0));
  double total_seconds = 0.0;
  int64_t iterations = 0;
  for (auto _ : state) {
    const auto start = Clock::now();
    const RefinementResult result = CheckRefinement(test);
    total_seconds += SecondsSince(start);
    ++iterations;
    if (!result.status.holds) {
      state.SkipWithError("fixed ticket lock must refine SC");
      break;
    }
    benchmark::DoNotOptimize(result.rm.outcomes.size());
  }
  if (iterations > 0 && total_seconds > 0.0) {
    state.counters["speedup"] = baseline_seconds / (total_seconds / iterations);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelRefinement_TicketLock)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The standard litmus suite through the batch runner: test-level parallelism.
void BM_ParallelBatch_DefaultSuite(benchmark::State& state) {
  const std::vector<LitmusTest> suite = DefaultLitmusSuite();
  const auto baseline_start = Clock::now();
  benchmark::DoNotOptimize(RunLitmusBatch(suite, 1).entries.size());
  const double baseline_seconds = SecondsSince(baseline_start);

  double total_seconds = 0.0;
  int64_t iterations = 0;
  for (auto _ : state) {
    const auto start = Clock::now();
    const BatchResult result = RunLitmusBatch(suite, static_cast<int>(state.range(0)));
    total_seconds += SecondsSince(start);
    ++iterations;
    benchmark::DoNotOptimize(result.entries.size());
  }
  if (iterations > 0 && total_seconds > 0.0) {
    state.counters["speedup"] = baseline_seconds / (total_seconds / iterations);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelBatch_DefaultSuite)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace vrm

int main(int argc, char** argv) { return vrm::RunBenchmarksWithJson(argc, argv); }
