// Memoized exploration front door: cold vs warm pass over the shared random
// corpus.
//
// The workload is the same 200-program corpus (100 seeds x {2,3} threads,
// fully observed) the memo and reduction differential suites sweep. Pass 1
// (cold) runs every program's Promising + SC walk through ExploreMemoized
// against an empty store — every request is a miss and explores for real.
// Pass 2 (warm) repeats the identical requests against the now-populated
// store — every request must be a hit.
//
// Host-independent numbers, which the regression gate rides on: the warm-pass
// hit rate (exactly 1.0 — a drop means keying or admission broke), the
// cold-pass hit rate (exactly 0 on this duplicate-free corpus), state-count
// agreement between passes, and the store's byte footprint. warm_speedup
// (cold wall / warm wall) is the motivating number but is host-dependent, so
// its gate runs with a very wide threshold: it only fails when memoization
// has effectively stopped working (speedup collapsing toward 1x). Recorded
// numbers live in BENCH_memo_cache.json and EXPERIMENTS.md.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_json.h"
#include "src/litmus/litmus.h"
#include "src/memo/memo.h"
#include "src/testing/random_program.h"

namespace vrm {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

// Fully observed corpus program, identical to the differential suites': every
// register and cell observable, state budget high enough that the corpus
// explores exhaustively (only Definitive results are cacheable).
LitmusTest ObservedCorpusProgram(uint64_t seed, int threads) {
  LitmusTest test = corpus::RandomProgram(seed, threads);
  for (ThreadId tid = 0; tid < static_cast<ThreadId>(threads); ++tid) {
    for (Reg reg = 0; reg < 4; ++reg) {
      test.program.observed_regs.push_back({tid, reg});
    }
  }
  for (Addr a = 0; a < corpus::kCells; ++a) {
    test.program.observed_locs.push_back(a);
  }
  test.config.max_states = 2'000'000;
  return test;
}

struct PassStats {
  double ms = 0.0;
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t states = 0;
};

PassStats RunPass(const std::vector<LitmusTest>& suite, memo::MemoStore* store) {
  PassStats pass;
  const auto start = std::chrono::steady_clock::now();
  for (const LitmusTest& test : suite) {
    for (memo::MachineKind machine :
         {memo::MachineKind::kPromising, memo::MachineKind::kSc}) {
      memo::ExploreRequest request;
      request.program = &test.program;
      request.config = test.config;
      request.machine = machine;
      request.store = store;
      const ExploreResult result = memo::ExploreMemoized(request);
      ++pass.requests;
      pass.hits += result.stats.memo_hits;
      pass.misses += result.stats.memo_misses;
      pass.states += result.stats.states;
    }
  }
  pass.ms = MsSince(start);
  return pass;
}

int Main(int argc, char** argv) {
  int seeds = argc > 1 ? std::atoi(argv[1]) : 100;
  if (seeds < 1) {
    seeds = 1;
  }
  std::vector<LitmusTest> suite;
  for (uint64_t seed = 1; seed <= static_cast<uint64_t>(seeds); ++seed) {
    for (int threads : {2, 3}) {
      suite.push_back(ObservedCorpusProgram(seed * 97, threads));
    }
  }

  memo::MemoStore store(memo::MemoStore::kGlobalCapacityBytes);
  const PassStats cold = RunPass(suite, &store);
  const PassStats warm = RunPass(suite, &store);

  const double cold_rate = static_cast<double>(cold.hits) / cold.requests;
  const double warm_rate = static_cast<double>(warm.hits) / warm.requests;
  const double speedup = cold.ms / (warm.ms > 1e-6 ? warm.ms : 1e-6);

  std::printf(
      "memo cache: %zu programs, %llu requests/pass\n"
      "  cold: %8.1f ms, %llu hits (rate %.3f), %llu states\n"
      "  warm: %8.1f ms, %llu hits (rate %.3f), %llu states\n"
      "  warm speedup %.1fx, store %llu entries / %llu bytes / %llu evictions\n",
      suite.size(), static_cast<unsigned long long>(cold.requests), cold.ms,
      static_cast<unsigned long long>(cold.hits), cold_rate,
      static_cast<unsigned long long>(cold.states), warm.ms,
      static_cast<unsigned long long>(warm.hits), warm_rate,
      static_cast<unsigned long long>(warm.states), speedup,
      static_cast<unsigned long long>(store.entries()),
      static_cast<unsigned long long>(store.bytes()),
      static_cast<unsigned long long>(store.evictions()));

  EmitBenchJson("memo_cache", "programs", static_cast<double>(suite.size()));
  EmitBenchJson("memo_cache", "requests", static_cast<double>(cold.requests));
  EmitBenchJson("memo_cache", "cold_ms", cold.ms);
  EmitBenchJson("memo_cache", "warm_ms", warm.ms);
  EmitBenchJson("memo_cache", "warm_speedup", speedup);
  EmitBenchJson("memo_cache", "cold_hit_rate", cold_rate);
  EmitBenchJson("memo_cache", "warm_hit_rate", warm_rate);
  // Cached results must be indistinguishable from fresh ones: the exact-hold
  // agreement flag trips on any cold/warm divergence in total states.
  EmitBenchJson("memo_cache", "passes_agree",
                cold.states == warm.states ? 1.0 : 0.0);
  EmitBenchJson("memo_cache", "store_bytes", static_cast<double>(store.bytes()));
  EmitBenchJson("memo_cache", "store_entries",
                static_cast<double>(store.entries()));
  EmitBenchJson("memo_cache", "store_evictions",
                static_cast<double>(store.evictions()));
  return cold.states == warm.states && warm.hits == warm.requests ? 0 : 1;
}

}  // namespace
}  // namespace vrm

int main(int argc, char** argv) { return vrm::Main(argc, argv); }
