#!/usr/bin/env python3
"""Flags benchmark regressions against the committed BENCH_*.json snapshots.

Every bench binary emits one JSON object per result on stdout in the fixed
shape ``{"bench": ..., "metric": ..., "value": ...}`` (bench/bench_json.h);
snapshots of those lines are checked in at the repository root. This script
re-runs a bench binary (or reads a capture) and compares each metric to the
snapshot, failing (exit 1) on any regression beyond the threshold
(default 20%).

Metric direction is inferred from the name:

* higher is better -- ``*reduction_factor*``, ``*speedup*``, ``*throughput*``,
  ``*states_per_sec*``, ``*programs_per_sec*``;
* lower is better  -- ``*_ms``, ``*wall*``, ``*_states``, ``*states_expanded*``,
  ``*_bytes``, ``*heartbeats*``;
* exact-hold booleans -- ``*agree*``, ``*holds*``, ``*definitive*``,
  ``*stopped_on*``, ``*bounded*``: any change from a passing snapshot fails;
* zero-hold counters -- ``*failures*``, ``*disagreements*``: any increase over
  the snapshot fails (a clean fuzz campaign must stay clean);
* exact-equal codes -- ``*stop_cause*``, ``*hit_rate*``: any change fails (an
  ungoverned smoke that suddenly reports a budget stop is a contract break,
  and a deterministic memo-cache hit rate that moves means the keying or the
  admission rules changed -- neither is noise);
* everything else is reported informationally and never gates.

Timing metrics (the lower-is-better ``*_ms``/``*wall*`` group) are noisy on
shared CI hosts, so they only gate under ``--include-timings``; the default
gate covers host-independent state counts, reduction factors, and agreement
flags. Stdlib only -- no third-party imports.

Usage:
  check_regression.py --baseline BENCH_reduction.json --run ./bench_reduction 1
  check_regression.py --baseline BENCH_reduction.json --current capture.txt
"""

import argparse
import json
import subprocess
import sys


def parse_lines(text):
    """Returns {(bench, metric): value} from bench_json-shaped output lines."""
    results = {}
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith('{"bench"'):
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        if {"bench", "metric", "value"} <= obj.keys():
            results[(obj["bench"], obj["metric"])] = float(obj["value"])
    return results


HIGHER_BETTER = ("reduction_factor", "speedup", "throughput", "states_per_sec",
                 "programs_per_sec")
LOWER_BETTER = ("_ms", "wall", "_states", "states_expanded", "_bytes",
                "heartbeats")
EXACT_HOLD = ("agree", "holds", "definitive", "stopped_on", "bounded")
ZERO_HOLD = ("failures", "disagreements")
EXACT_EQUAL = ("stop_cause", "hit_rate")


def classify(metric):
    name = metric.lower()
    if any(k in name for k in EXACT_EQUAL):
        return "equal"
    if any(k in name for k in ZERO_HOLD):
        return "zero"
    if any(k in name for k in EXACT_HOLD):
        return "exact"
    if any(k in name for k in HIGHER_BETTER):
        return "higher"
    if any(k in name for k in LOWER_BETTER):
        return "lower"
    return "info"


def is_timing(metric):
    name = metric.lower()
    return name.endswith("_ms") or "wall" in name


def compare(baseline, current, threshold, include_timings):
    """Returns (regressions, notes): gating failures and informational lines."""
    regressions, notes = [], []
    for key, base in sorted(baseline.items()):
        bench, metric = key
        if key not in current:
            regressions.append(f"{bench}/{metric}: missing from current run "
                               f"(baseline {base:g})")
            continue
        cur = current[key]
        kind = classify(metric)
        if kind == "equal":
            if cur != base:
                regressions.append(f"{bench}/{metric}: {base:g} -> {cur:g} "
                                   "(stop-cause code changed)")
            continue
        if kind == "zero":
            if cur > base:
                regressions.append(f"{bench}/{metric}: {base:g} -> {cur:g} "
                                   "(new failures/disagreements)")
            continue
        if kind == "exact":
            if base >= 1 and cur < base:
                regressions.append(f"{bench}/{metric}: {base:g} -> {cur:g} "
                                   "(agreement/verdict flag dropped)")
            continue
        if kind == "info" or base <= 0:
            notes.append(f"{bench}/{metric}: {base:g} -> {cur:g} (not gated)")
            continue
        if kind == "lower" and is_timing(metric) and not include_timings:
            notes.append(f"{bench}/{metric}: {base:g} -> {cur:g} "
                         "(timing, not gated; use --include-timings)")
            continue
        ratio = cur / base
        if kind == "higher" and ratio < 1 - threshold:
            regressions.append(f"{bench}/{metric}: {base:g} -> {cur:g} "
                               f"({(1 - ratio) * 100:.1f}% worse)")
        elif kind == "lower" and ratio > 1 + threshold:
            regressions.append(f"{bench}/{metric}: {base:g} -> {cur:g} "
                               f"({(ratio - 1) * 100:.1f}% worse)")
    return regressions, notes


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json snapshot to gate against")
    parser.add_argument("--current",
                        help="file with the fresh run's output (JSON lines "
                             "mixed with tables is fine)")
    parser.add_argument("--run", nargs=argparse.REMAINDER,
                        help="bench binary (plus args) to execute and capture")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="allowed relative slack (default 0.2 = 20%%)")
    parser.add_argument("--include-timings", action="store_true",
                        help="also gate *_ms / wall-clock metrics")
    parser.add_argument("--verbose", action="store_true",
                        help="print non-gated metric movements")
    args = parser.parse_args()

    if bool(args.current) == bool(args.run):
        parser.error("exactly one of --current or --run is required")

    with open(args.baseline, encoding="utf-8") as f:
        baseline = parse_lines(f.read())
    if not baseline:
        print(f"error: no bench JSON lines in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    if args.run:
        proc = subprocess.run(args.run, capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"error: bench run exited {proc.returncode}", file=sys.stderr)
            sys.stderr.write(proc.stderr)
            return 2
        current = parse_lines(proc.stdout)
    else:
        with open(args.current, encoding="utf-8") as f:
            current = parse_lines(f.read())

    regressions, notes = compare(baseline, current, args.threshold,
                                 args.include_timings)
    if args.verbose:
        for note in notes:
            print(f"note: {note}")
    gated = len(baseline) - len(notes)
    if regressions:
        print(f"{len(regressions)} regression(s) vs {args.baseline} "
              f"(threshold {args.threshold * 100:.0f}%):")
        for regression in regressions:
            print(f"  REGRESSION {regression}")
        return 1
    print(f"ok: {gated} gated metrics within {args.threshold * 100:.0f}% of "
          f"{args.baseline} ({len(notes)} informational)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
