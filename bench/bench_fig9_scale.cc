// Regenerates Figure 9: multi-VM application benchmark performance on the m400
// (Linux 4.18), 1 to 32 concurrent 2-vCPU VMs, normalized to native execution
// of one instance. Uses the discrete-event scheduler simulation.

#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "src/perf/multivm_sim.h"
#include "src/support/table.h"

namespace vrm {
namespace {

int Main() {
  const Platform platform = PlatformM400();
  const int counts[] = {1, 2, 4, 8, 16, 32};

  std::printf("== Figure 9: Multi-VM application benchmark performance ==\n");
  std::printf("(m400, Linux 4.18, 2-vCPU VMs on 8 cores; normalized to one native "
              "instance)\n\n");
  for (const AppWorkload& workload : AllAppWorkloads()) {
    TextTable fig({"VMs", "KVM", "SeKVM", "SeKVM/KVM", "KCore lock util",
                   "I/O backend util", "SeKVM p99 latency (ms)"});
    for (int n : counts) {
      const auto kvm = SimulateMultiVm(platform, Hypervisor::kKvm, workload, n);
      const auto sekvm = SimulateMultiVm(platform, Hypervisor::kSeKvm, workload, n);
      fig.AddRow({std::to_string(n), FormatDouble(kvm.normalized, 3),
                  FormatDouble(sekvm.normalized, 3),
                  FormatDouble(sekvm.normalized / kvm.normalized, 3),
                  FormatDouble(sekvm.lock_utilization, 3),
                  FormatDouble(sekvm.backend_utilization, 3),
                  FormatDouble(sekvm.latency_p99 * 1000, 2)});
      const std::string bench = std::string("fig9/") + workload.name +
                                "/vms=" + std::to_string(n);
      EmitBenchJson(bench, "kvm_normalized", kvm.normalized);
      EmitBenchJson(bench, "sekvm_normalized", sekvm.normalized);
    }
    std::printf("--- %s ---\n%s\n", workload.name.c_str(), fig.Render().c_str());
  }
  std::printf(
      "Shape check: both hypervisors hold per-VM performance up to 4 VMs (8 cores /\n"
      "2 vCPUs), then degrade together; SeKVM stays within 10%% of KVM at every VM\n"
      "count, and KCore's lock never approaches saturation — the paper's\n"
      "scalability-parity result.\n");
  return 0;
}

}  // namespace
}  // namespace vrm

int main() { return vrm::Main(); }
