// Flat-state memory layout: the states/sec and visited-set-RSS acceptance
// numbers for the SmallVec + DigestSet + outcome-interning work (DESIGN.md
// "State memory layout").
//
// Part 1 runs the ticket-lock Promising walk (Reduction::kPor, the heaviest
// routinely-explored workload) on the sequential engine and reports wall
// clock, states/sec, and the layout counters ExploreStats now carries:
// state_allocs (heap allocations still held by admitted states — 0 when every
// inline capacity fits) and mean_state_bytes (struct + spilled buffers per
// admitted state).
//
// Part 2 measures visited-set bytes per state at the walk's actual unique-
// state count: the flat DigestSet's exact slot-array footprint against an
// in-binary replica of the pre-flat dedup container
// (std::unordered_set<Digest128, DigestHash>, what the sequential explorer's
// `seen` was), filled with the same number of keys and measured through the
// allocator (glibc mallinfo2), so node and bucket overhead are counted for
// real rather than modeled. The headline `visited_bytes_reduction_factor` is
// the legacy/flat ratio; the committed snapshot gates it.
//
// Part 3 re-runs the same walk under the parallel engine at 1/2/4 workers and
// requires the outcome sets to be BIT-IDENTICAL to the sequential render
// (every outcome's ToString in sorted-key order — registers, locations,
// faults; the schedule-dependent stats line is excluded) — a faster layout
// that perturbed outcomes would be worthless. Any divergence zeroes the
// workers_N_outcomes_agree metric, which the regression gate holds exactly.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench/bench_json.h"
#include "src/litmus/litmus.h"
#include "src/litmus/paper_examples.h"
#include "src/model/reduction.h"
#include "src/support/digest_table.h"
#include "src/support/hash.h"

namespace vrm {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

// Bytes currently handed out by the allocator (arena + mmap), for measuring
// the legacy container's true footprint including node and bucket overhead.
uint64_t AllocatorBytes() {
#if defined(__GLIBC__)
  struct mallinfo2 mi = mallinfo2();
  return static_cast<uint64_t>(mi.uordblks) + static_cast<uint64_t>(mi.hblkhd);
#else
  return 0;
#endif
}

// Every outcome rendered in sorted-key order — the bit-identity witness for
// the worker-agreement checks. (ExploreResult::Describe also prints the stats
// line, whose steal/frontier counters are legitimately schedule-dependent.)
std::string RenderOutcomes(const ExploreResult& result, const Program& program) {
  std::string out;
  for (const auto& [key, outcome] : result.outcomes) {
    (void)key;
    out += outcome.ToString(program);
    out += '\n';
  }
  return out;
}

// Synthetic digests with the entropy real state digests have (both lanes are
// hash outputs); the tables' footprint depends only on the key count.
Digest128 NthDigest(uint64_t n) {
  return {Mix64(n * 2 + 1), Mix64(n * 0x9e3779b97f4a7c15ull + 0x1234567)};
}

// Visited-set bytes/state at `states` keys: flat DigestSet (exact, from the
// slot array) vs the pre-flat std::unordered_set replica (allocator-measured;
// falls back to the ~48 B node + bucket-pointer model off glibc).
void BenchVisitedFootprint(const std::string& bench, uint64_t states) {
  DigestSet flat;
  for (uint64_t i = 0; i < states; ++i) {
    flat.Insert(NthDigest(i));
  }
  const double flat_bps =
      static_cast<double>(flat.MemoryBytes()) / static_cast<double>(states);

  double legacy_bps;
  {
    const uint64_t before = AllocatorBytes();
    auto* legacy = new std::unordered_set<Digest128, DigestHash>();
    for (uint64_t i = 0; i < states; ++i) {
      legacy->insert(NthDigest(i));
    }
    const uint64_t after = AllocatorBytes();
    if (after > before) {
      legacy_bps = static_cast<double>(after - before) / static_cast<double>(states);
    } else {
      legacy_bps = 48.0 + static_cast<double>(legacy->bucket_count() * sizeof(void*)) /
                              static_cast<double>(states);
    }
    delete legacy;
  }

  EmitBenchJson(bench, "flat_visited_bytes_per_state", flat_bps);
  EmitBenchJson(bench, "legacy_visited_bytes_per_state", legacy_bps);
  EmitBenchJson(bench, "visited_bytes_reduction_factor", legacy_bps / flat_bps);
  std::printf("visited set at %llu states: flat %.1f B/state, "
              "legacy unordered_set %.1f B/state (%.2fx)\n",
              static_cast<unsigned long long>(states), flat_bps, legacy_bps,
              legacy_bps / flat_bps);
}

int Main(int argc, char** argv) {
  // bench-smoke runs `bench_state_layout 1`; measurement runs default to 3.
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;

  LitmusTest test = Example2VmBooting(true);
  test.config.reduction = Reduction::kPor;
  test.config.num_threads = 1;
  const std::string bench = "state_layout/ticket_lock";

  // Part 1: sequential throughput + layout counters.
  std::printf("== Flat-state layout: ticket-lock Promising walk (por) ==\n");
  ExploreResult seq;
  double best_ms = 0.0;
  for (int i = 0; i < iters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    ExploreResult r = RunPromising(test);
    const double t = MsSince(start);
    if (i == 0 || t < best_ms) best_ms = t;
    seq = std::move(r);
  }
  const double states_per_sec =
      static_cast<double>(seq.stats.states) / (best_ms / 1000.0);
  EmitBenchJson(bench, "states", static_cast<double>(seq.stats.states));
  EmitBenchJson(bench, "wall_ms", best_ms);
  EmitBenchJson(bench, "states_per_sec", states_per_sec);
  EmitBenchJson(bench, "state_allocs", static_cast<double>(seq.stats.state_allocs));
  EmitBenchJson(bench, "mean_state_bytes",
                static_cast<double>(seq.stats.MeanStateBytes()));
  std::printf("%llu states in %.1f ms (best of %d) = %.0f states/sec; "
              "%llu state allocs, mean state %llu B\n",
              static_cast<unsigned long long>(seq.stats.states), best_ms, iters,
              states_per_sec,
              static_cast<unsigned long long>(seq.stats.state_allocs),
              static_cast<unsigned long long>(seq.stats.MeanStateBytes()));

  // Part 2: visited-set footprint at this walk's unique-state count.
  BenchVisitedFootprint(bench, seq.stats.states);

  // Part 3: worker-count agreement, bit-identical outcome renders.
  const std::string seq_render = RenderOutcomes(seq, test.program);
  for (int workers : {1, 2, 4}) {
    LitmusTest par = test;
    par.config.num_threads = workers;
    const ExploreResult r = RunPromising(par);
    const bool agree = r.stats.states == seq.stats.states &&
                       r.outcomes.size() == seq.outcomes.size() &&
                       RenderOutcomes(r, par.program) == seq_render;
    EmitBenchJson(bench, "workers_" + std::to_string(workers) + "_outcomes_agree",
                  agree ? 1 : 0);
    if (!agree) {
      std::printf("!! %d-worker walk DIVERGES from the sequential render\n", workers);
      return 1;
    }
  }
  std::printf("1/2/4-worker outcome renders bit-identical to sequential\n");
  return 0;
}

}  // namespace
}  // namespace vrm

int main(int argc, char** argv) { return vrm::Main(argc, argv); }
