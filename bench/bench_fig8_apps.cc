// Regenerates Table 4 (application benchmark descriptions) and Figure 8
// (single-VM application performance, normalized to native execution, for KVM
// and SeKVM in Linux 4.18 and 5.4 on both platforms).

#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "src/perf/app_sim.h"
#include "src/support/table.h"

namespace vrm {
namespace {

int Main() {
  std::printf("== Table 4: Application benchmarks ==\n");
  TextTable table4({"Name", "Description"});
  for (const AppWorkload& workload : AllAppWorkloads()) {
    table4.AddRow({workload.name, workload.description});
  }
  std::printf("%s\n", table4.Render().c_str());

  std::printf("== Figure 8: Single-VM application benchmark performance ==\n");
  std::printf("(normalized to native execution; higher is better)\n\n");
  for (const Platform& platform : {PlatformM400(), PlatformSeattle()}) {
    TextTable fig({"Workload", "KVM 4.18", "SeKVM 4.18", "KVM 5.4", "SeKVM 5.4",
                   "SeKVM/KVM"});
    for (const AppWorkload& workload : AllAppWorkloads()) {
      SimOptions v418;
      v418.version = LinuxVersion::k418;
      SimOptions v54;
      v54.version = LinuxVersion::k54;
      const double kvm418 =
          SimulateApp(platform, Hypervisor::kKvm, workload, v418).normalized;
      const double sek418 =
          SimulateApp(platform, Hypervisor::kSeKvm, workload, v418).normalized;
      const double kvm54 =
          SimulateApp(platform, Hypervisor::kKvm, workload, v54).normalized;
      const double sek54 =
          SimulateApp(platform, Hypervisor::kSeKvm, workload, v54).normalized;
      fig.AddRow({workload.name, FormatDouble(kvm418, 3), FormatDouble(sek418, 3),
                  FormatDouble(kvm54, 3), FormatDouble(sek54, 3),
                  FormatDouble(sek418 / kvm418, 3)});
      const std::string bench =
          std::string("fig8/") + platform.name + "/" + workload.name;
      EmitBenchJson(bench, "kvm_418_normalized", kvm418);
      EmitBenchJson(bench, "sekvm_418_normalized", sek418);
      EmitBenchJson(bench, "kvm_54_normalized", kvm54);
      EmitBenchJson(bench, "sekvm_54_normalized", sek54);
    }
    std::printf("--- %s ---\n%s\n", platform.name.c_str(), fig.Render().c_str());
    std::printf("CSV (%s):\n%s\n", platform.name.c_str(), fig.RenderCsv().c_str());
  }
  std::printf("Shape check: SeKVM within 10%% of unmodified KVM on every workload,\n"
              "platform and kernel version (the paper's worst case is <10%%).\n");
  return 0;
}

}  // namespace
}  // namespace vrm

int main() { return vrm::Main(); }
