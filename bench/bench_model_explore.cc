// google-benchmark microbenchmarks of the verification substrate itself:
// exhaustive exploration throughput on the SC and Promising machines, the
// condition-checker pipeline, and the transactional-page-table checker. These
// quantify the cost of the bounded-checking approach (the reproduction's
// stand-in for the paper's Coq proof effort discussion).

#include <benchmark/benchmark.h>

#include "bench/bench_json_gbench.h"
#include "src/litmus/classics.h"
#include "src/litmus/paper_examples.h"
#include "src/model/explorer.h"
#include "src/model/promising_machine.h"
#include "src/model/sc_machine.h"
#include "src/sekvm/tinyarm_primitives.h"
#include "src/vrm/conditions.h"
#include "src/vrm/sc_construction.h"
#include "src/vrm/txn_pt_checker.h"

namespace vrm {
namespace {

void BM_ScExplore_Mp(benchmark::State& state) {
  const LitmusTest test = ClassicMp(Strength::kPlain, Strength::kPlain);
  uint64_t states = 0;
  for (auto _ : state) {
    ScMachine machine(test.program, test.config);
    const ExploreResult result = Explore(machine, test.config);
    states = result.stats.states;
    benchmark::DoNotOptimize(result.outcomes.size());
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_ScExplore_Mp);

void BM_PromisingExplore_Mp(benchmark::State& state) {
  const LitmusTest test = ClassicMp(Strength::kPlain, Strength::kPlain);
  uint64_t states = 0;
  for (auto _ : state) {
    PromisingMachine machine(test.program, test.config);
    const ExploreResult result = Explore(machine, test.config);
    states = result.stats.states;
    benchmark::DoNotOptimize(result.outcomes.size());
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_PromisingExplore_Mp);

void BM_PromisingExplore_Example1(benchmark::State& state) {
  const LitmusTest test = Example1OutOfOrderWrite(false);
  for (auto _ : state) {
    PromisingMachine machine(test.program, test.config);
    benchmark::DoNotOptimize(Explore(machine, test.config).outcomes.size());
  }
}
BENCHMARK(BM_PromisingExplore_Example1);

void BM_PromisingExplore_TicketLock(benchmark::State& state) {
  // The fixed gen_vmid lock — the heaviest routinely-explored program.
  const LitmusTest test = Example2VmBooting(true);
  for (auto _ : state) {
    PromisingMachine machine(test.program, test.config);
    benchmark::DoNotOptimize(Explore(machine, test.config).outcomes.size());
  }
}
BENCHMARK(BM_PromisingExplore_TicketLock)->Unit(benchmark::kMillisecond);

void BM_PromisingExplore_PorAblation(benchmark::State& state) {
  // state.range(0) == 1 disables the partial-order reduction.
  LitmusTest test = Example1OutOfOrderWrite(false);
  test.config.reduction = state.range(0) == 1 ? Reduction::kNone : Reduction::kPor;
  uint64_t states = 0;
  for (auto _ : state) {
    PromisingMachine machine(test.program, test.config);
    const ExploreResult result = Explore(machine, test.config);
    states = result.stats.states;
    benchmark::DoNotOptimize(result.outcomes.size());
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_PromisingExplore_PorAblation)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("por_disabled");

void BM_CheckWdrf_VcpuContext(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckWdrf(VcpuContextKernelSpec(true)).AllHold());
  }
}
BENCHMARK(BM_CheckWdrf_VcpuContext)->Unit(benchmark::kMillisecond);

void BM_TxnPtChecker_SetS2pt(benchmark::State& state) {
  const PtWriteSequence seq = SetS2ptWriteSequence(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckTransactionalWrites(seq.mmu, seq.initial, seq.writes, seq.probe_vpages)
            .transactional);
  }
}
BENCHMARK(BM_TxnPtChecker_SetS2pt)->Arg(2)->Arg(3);

void BM_ScConstruction_LockedCounter(benchmark::State& state) {
  const LockedCounterProgram lc = MakeLockedCounter(2, true);
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ConstructAndReplay(lc.program, lc.config, seed++).results_match);
  }
}
BENCHMARK(BM_ScConstruction_LockedCounter)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vrm

int main(int argc, char** argv) { return vrm::RunBenchmarksWithJson(argc, argv); }
