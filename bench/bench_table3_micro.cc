// Regenerates Table 2 (microbenchmark descriptions) and Table 3
// (microbenchmark cycles: KVM vs SeKVM on m400 and Seattle).
//
// The KVM columns are the calibration targets; the SeKVM columns are *derived*
// by the cost model (extra KCore crossings + simulated TLB behaviour), so the
// interesting comparison is SeKVM-vs-paper. Paper reference values are printed
// alongside for the shape check.

#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "src/perf/micro_sim.h"
#include "src/support/table.h"

namespace vrm {
namespace {

struct PaperRow {
  Micro micro;
  uint64_t m400_kvm, m400_sekvm, seattle_kvm, seattle_sekvm;
};

constexpr PaperRow kPaper[] = {
    {Micro::kHypercall, 2275, 4695, 2896, 3720},
    {Micro::kIoKernel, 3144, 7235, 3831, 4864},
    {Micro::kIoUser, 7864, 15501, 9288, 10903},
    {Micro::kVirtualIpi, 7915, 13900, 8816, 10699},
};

int Main() {
  std::printf("== Table 2: Microbenchmarks ==\n");
  TextTable table2({"Name", "Description"});
  for (const PaperRow& row : kPaper) {
    table2.AddRow({ToString(row.micro), MicroDescription(row.micro)});
  }
  std::printf("%s\n", table2.Render().c_str());

  std::printf("== Table 3: Microbenchmark performance (cycles) ==\n");
  const Platform m400 = PlatformM400();
  const Platform seattle = PlatformSeattle();
  TextTable table3({"Benchmark", "m400 KVM", "m400 SeKVM", "Seattle KVM",
                    "Seattle SeKVM"});
  TextTable reference({"Benchmark", "m400 KVM", "m400 SeKVM", "Seattle KVM",
                       "Seattle SeKVM"});
  for (const PaperRow& row : kPaper) {
    const auto m_kvm = SimulateMicro(m400, Hypervisor::kKvm, row.micro);
    const auto m_sek = SimulateMicro(m400, Hypervisor::kSeKvm, row.micro);
    const auto s_kvm = SimulateMicro(seattle, Hypervisor::kKvm, row.micro);
    const auto s_sek = SimulateMicro(seattle, Hypervisor::kSeKvm, row.micro);
    table3.AddRow({ToString(row.micro),
                   FormatWithCommas(static_cast<int64_t>(m_kvm.cycles)),
                   FormatWithCommas(static_cast<int64_t>(m_sek.cycles)),
                   FormatWithCommas(static_cast<int64_t>(s_kvm.cycles)),
                   FormatWithCommas(static_cast<int64_t>(s_sek.cycles))});
    const std::string bench = std::string("table3/") + ToString(row.micro);
    EmitBenchJson(bench, "m400_kvm_cycles", static_cast<double>(m_kvm.cycles));
    EmitBenchJson(bench, "m400_sekvm_cycles", static_cast<double>(m_sek.cycles));
    EmitBenchJson(bench, "seattle_kvm_cycles", static_cast<double>(s_kvm.cycles));
    EmitBenchJson(bench, "seattle_sekvm_cycles", static_cast<double>(s_sek.cycles));
    reference.AddRow({ToString(row.micro),
                      FormatWithCommas(static_cast<int64_t>(row.m400_kvm)),
                      FormatWithCommas(static_cast<int64_t>(row.m400_sekvm)),
                      FormatWithCommas(static_cast<int64_t>(row.seattle_kvm)),
                      FormatWithCommas(static_cast<int64_t>(row.seattle_sekvm))});
  }
  std::printf("Simulated:\n%s\n", table3.Render().c_str());
  std::printf("Paper (SOSP'21 Table 3):\n%s\n", reference.Render().c_str());

  std::printf("== SeKVM cost decomposition (simulated) ==\n");
  TextTable decomposition({"Platform", "Benchmark", "Structural", "TLB misses",
                           "TLB cycles", "Total"});
  for (const Platform& platform : {m400, seattle}) {
    for (const PaperRow& row : kPaper) {
      const auto r = SimulateMicro(platform, Hypervisor::kSeKvm, row.micro);
      decomposition.AddRow(
          {platform.name, ToString(row.micro),
           FormatWithCommas(static_cast<int64_t>(r.base_cycles)),
           FormatWithCommas(static_cast<int64_t>(r.tlb_misses)),
           FormatWithCommas(static_cast<int64_t>(r.tlb_miss_cycles)),
           FormatWithCommas(static_cast<int64_t>(r.cycles))});
    }
  }
  std::printf("%s\n", decomposition.Render().c_str());
  std::printf("CSV:\n%s", table3.RenderCsv().c_str());
  return 0;
}

}  // namespace
}  // namespace vrm

int main() { return vrm::Main(); }
