// Engine fusion: one fused walk pair vs the standalone checker walks.
//
// The legacy flow verifies a kernel with two independent checker calls —
// CheckRefinement (one Promising walk + one SC walk) and CheckWdrf (a second
// Promising walk with monitors armed) — three explorations in all. The fused
// VerifyKernel performs one armed Promising walk feeding every wDRF pass plus
// one overlapped SC walk, and derives the identical combined report from that
// single pair. This bench times both flows on the paper's ticket-lock and
// Example-1 kernels and reports the speedup plus the states_expanded equality
// the fusion promises (the headline numbers live in EXPERIMENTS.md and
// BENCH_engine_fusion.json).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/engine/verify_kernel.h"
#include "src/engine/wdrf_passes.h"
#include "src/litmus/paper_examples.h"
#include "src/sekvm/tinyarm_primitives.h"
#include "src/support/table.h"
#include "src/vrm/refinement.h"

namespace vrm {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

KernelSpec Example1KernelSpec(bool fixed) {
  const LitmusTest test = Example1OutOfOrderWrite(fixed);
  KernelSpec spec;
  spec.program = test.program;
  spec.base_config = test.config;
  return spec;
}

void RunCase(TextTable* table, const std::string& name, const KernelSpec& spec,
             int iters) {
  // Best-of-N wall clock for each flow: small enough for bench-smoke, stable
  // enough for the recorded numbers (run with a Release build and iters >= 5).
  double legacy_ms = 0.0, fused_ms = 0.0;
  uint64_t legacy_states = 0, fused_states = 0;
  bool agree = true;
  for (int i = 0; i < iters; ++i) {
    const auto legacy_start = std::chrono::steady_clock::now();
    const RefinementResult refinement =
        CheckRefinement(LitmusTest{spec.program, WdrfModelConfig(spec), ""});
    const WdrfReport wdrf = CheckWdrf(spec);
    const double legacy = MsSince(legacy_start);

    const auto fused_start = std::chrono::steady_clock::now();
    const KernelVerification fused = VerifyKernel(spec);
    const double fus = MsSince(fused_start);

    if (i == 0 || legacy < legacy_ms) legacy_ms = legacy;
    if (i == 0 || fus < fused_ms) fused_ms = fus;
    legacy_states = wdrf.stats.states;
    fused_states = fused.refinement.rm.stats.states;
    agree &= fused.refinement.status == refinement.status &&
             fused.wdrf.AllHold() == wdrf.AllHold() &&
             fused_states == legacy_states;
  }

  const double speedup = legacy_ms / fused_ms;
  table->AddRow({name, FormatDouble(legacy_ms, 2), FormatDouble(fused_ms, 2),
                 FormatDouble(speedup, 2) + "x",
                 std::to_string(fused_states), agree ? "yes" : "NO"});

  const std::string bench = "engine_fusion/" + name;
  EmitBenchJson(bench, "legacy_ms", legacy_ms);
  EmitBenchJson(bench, "fused_ms", fused_ms);
  EmitBenchJson(bench, "speedup", speedup);
  EmitBenchJson(bench, "rm_states_expanded", static_cast<double>(fused_states));
  EmitBenchJson(bench, "states_match_standalone",
                fused_states == legacy_states ? 1 : 0);
  EmitBenchJson(bench, "reports_agree", agree ? 1 : 0);
}

int Main(int argc, char** argv) {
  // bench-smoke runs `bench_engine_fusion 1` (one iteration); measurement runs
  // use the default 5.
  const int iters = argc > 1 ? std::atoi(argv[1]) : 5;

  std::printf("== Engine fusion: VerifyKernel vs CheckRefinement + CheckWdrf ==\n");
  std::printf("(legacy = 2 Promising walks + 1 SC walk; fused = 1 + 1, "
              "best of %d)\n\n", iters);

  TextTable table({"kernel", "legacy ms", "fused ms", "speedup", "RM states",
                   "reports agree"});
  RunCase(&table, "gen_vmid_ticket_lock", GenVmidKernelSpec(true), iters);
  RunCase(&table, "gen_vmid_llsc", GenVmidLlscKernelSpec(true), iters);
  RunCase(&table, "example1_fixed", Example1KernelSpec(true), iters);
  RunCase(&table, "example1_buggy", Example1KernelSpec(false), iters);
  RunCase(&table, "vcpu_context", VcpuContextKernelSpec(true), iters);
  std::printf("%s\n", table.Render().c_str());
  std::printf("The fused flow re-derives every verdict from one walk pair; "
              "'reports agree' checks verdicts AND states_expanded match the "
              "standalone checkers exactly.\n");
  return 0;
}

}  // namespace
}  // namespace vrm

int main(int argc, char** argv) { return vrm::Main(argc, argv); }
