// State-space reduction: ample-set POR + thread-symmetry vs the unreduced
// explorer, and the suite-level parallel scheduler.
//
// Part 1 runs four representative workloads — SB and MP with their fixes,
// IRIW+dmb (the 4-thread classic, the symmetry showcase), and the paper's
// fixed Example 2 ticket lock — under ModelConfig::reduction none / por /
// por+symmetry on both hardware models, recording states expanded, states
// pruned, and wall clock. State counts are host-independent: they, not the
// timings, are the numbers the ISSUE acceptance gates on (>= 2x fewer states
// on the ticket lock and a classic at por+symmetry). Every mode must project
// the identical outcome set — the run aborts with outcomes_agree=0 otherwise.
//
// Part 2 times RunLitmusBatch over the default suite at 1/2/4 test-level
// workers (the suite scheduler: sequential explorer per test, LPT dispatch).
// On a multicore host the 4-worker run should be >= 1.5x the 1-worker run;
// on a single-core CI box the speedup degrades to ~1x and only the agreement
// checks are meaningful. Recorded numbers live in BENCH_reduction.json and
// EXPERIMENTS.md.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/arch/builder.h"
#include "src/litmus/batch.h"
#include "src/litmus/classics.h"
#include "src/litmus/litmus.h"
#include "src/litmus/paper_examples.h"
#include "src/model/reduction.h"
#include "src/support/table.h"

namespace vrm {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

std::vector<std::string> OutcomeKeys(const ExploreResult& result) {
  std::vector<std::string> keys;
  for (const auto& [key, outcome] : result.outcomes) {
    (void)outcome;
    keys.push_back(key);
  }
  return keys;
}

constexpr Reduction kModes[] = {Reduction::kNone, Reduction::kPor,
                                Reduction::kPorSymmetry};

struct ModeRun {
  uint64_t sc_states = 0, rm_states = 0;
  uint64_t sc_pruned = 0, rm_pruned = 0;
  double sc_ms = 0.0, rm_ms = 0.0;
  std::vector<std::string> sc_keys, rm_keys;
};

ModeRun RunMode(const LitmusTest& base, Reduction mode, int iters) {
  LitmusTest test = base;
  test.config.reduction = mode;
  test.config.num_threads = 1;  // the sequential engine: what the batch runs
  ModeRun run;
  for (int i = 0; i < iters; ++i) {
    auto start = std::chrono::steady_clock::now();
    const ExploreResult sc = RunSc(test);
    const double sc_t = MsSince(start);
    start = std::chrono::steady_clock::now();
    const ExploreResult rm = RunPromising(test);
    const double rm_t = MsSince(start);
    if (i == 0 || sc_t < run.sc_ms) run.sc_ms = sc_t;
    if (i == 0 || rm_t < run.rm_ms) run.rm_ms = rm_t;
    run.sc_states = sc.stats.states;
    run.rm_states = rm.stats.states;
    run.sc_pruned = sc.stats.states_pruned;
    run.rm_pruned = rm.stats.states_pruned;
    run.sc_keys = OutcomeKeys(sc);
    run.rm_keys = OutcomeKeys(rm);
  }
  return run;
}

void BenchWorkload(const std::string& short_name, const LitmusTest& test,
                   TextTable* table, int iters) {
  ModeRun runs[3];
  for (int m = 0; m < 3; ++m) {
    runs[m] = RunMode(test, kModes[m], iters);
  }
  const ModeRun& none = runs[0];
  bool agree = true;
  for (int m = 1; m < 3; ++m) {
    agree &= runs[m].sc_keys == none.sc_keys && runs[m].rm_keys == none.rm_keys;
  }
  const std::string bench = "reduction/" + short_name;
  for (int m = 0; m < 3; ++m) {
    const ModeRun& run = runs[m];
    const std::string mode = ReductionName(kModes[m]);
    table->AddRow({short_name, mode, std::to_string(run.sc_states),
                   std::to_string(run.rm_states), std::to_string(run.sc_pruned),
                   std::to_string(run.rm_pruned), FormatDouble(run.sc_ms, 2),
                   FormatDouble(run.rm_ms, 2)});
    const std::string prefix = mode == "por+symmetry" ? "por_symmetry" : mode;
    EmitBenchJson(bench, prefix + "_sc_states", static_cast<double>(run.sc_states));
    EmitBenchJson(bench, prefix + "_rm_states", static_cast<double>(run.rm_states));
    EmitBenchJson(bench, prefix + "_sc_wall_ms", run.sc_ms);
    EmitBenchJson(bench, prefix + "_rm_wall_ms", run.rm_ms);
    if (m > 0) {
      EmitBenchJson(bench, prefix + "_sc_reduction_factor",
                    static_cast<double>(none.sc_states) /
                        static_cast<double>(run.sc_states));
      EmitBenchJson(bench, prefix + "_rm_reduction_factor",
                    static_cast<double>(none.rm_states) /
                        static_cast<double>(run.rm_states));
    }
  }
  EmitBenchJson(bench, "outcomes_agree", agree ? 1 : 0);
  if (!agree) {
    std::printf("!! %s: reduced outcome sets DIVERGE from the unreduced walk\n",
                short_name.c_str());
  }
}

// Where the ample layer itself earns its keep: the classics above are all
// contention (every access shared, so only machine-POR and symmetry bite),
// but real kernel threads interleave private work with shared handoffs. Three
// identical threads each run a private load/store chain on their own cell,
// then fetch-add a shared counter: the private accesses are sole-accessor
// invisible steps and the explorer expands one thread's chain at a time.
LitmusTest PrivateWorkSharedCounter() {
  ProgramBuilder pb("private_work_shared_counter");
  constexpr int kThreads = 3;
  constexpr Addr kCounter = kThreads;  // cells 0..2 private, 3 shared
  pb.MemSize(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    auto& tb = pb.NewThread();
    const Addr mine = static_cast<Addr>(t);
    tb.StoreAddr(mine, 0, MemOrder::kPlain);
    tb.LoadAddr(1, mine, MemOrder::kPlain);
    tb.FetchAddAddr(0, kCounter, 1, MemOrder::kAcqRel);
    pb.ObserveReg(static_cast<ThreadId>(t), 0);
  }
  pb.ObserveLoc(kCounter);
  return LitmusTest{pb.Build(), {}, "ample-set showcase"};
}

// The suite scheduler: same suite, same per-test sequential explorer, more
// test-level workers. Agreement = every entry's verdict and outcome counts
// match the 1-worker run exactly (parallelism reorders wall clock only).
void BenchSuiteScheduler(int iters) {
  const std::vector<LitmusTest> suite = DefaultLitmusSuite();
  const std::string bench = "reduction/suite_scheduler";
  BatchResult baseline;
  double baseline_ms = 0.0;
  TextTable table({"workers", "wall ms", "speedup", "verdicts agree"});
  for (int workers : {1, 2, 4}) {
    double best_ms = 0.0;
    bool agree = true;
    for (int i = 0; i < iters; ++i) {
      const auto start = std::chrono::steady_clock::now();
      const BatchResult batch = RunLitmusBatch(suite, workers);
      const double t = MsSince(start);
      if (i == 0 || t < best_ms) best_ms = t;
      if (workers == 1) {
        baseline = batch;
      } else {
        for (size_t e = 0; e < batch.entries.size(); ++e) {
          agree &= batch.entries[e].status == baseline.entries[e].status &&
                   batch.entries[e].sc.outcomes.size() ==
                       baseline.entries[e].sc.outcomes.size() &&
                   batch.entries[e].rm.outcomes.size() ==
                       baseline.entries[e].rm.outcomes.size();
        }
      }
    }
    if (workers == 1) baseline_ms = best_ms;
    const double speedup = baseline_ms / best_ms;
    table.AddRow({std::to_string(workers), FormatDouble(best_ms, 2),
                  FormatDouble(speedup, 2) + "x", agree ? "yes" : "NO"});
    const std::string prefix = "workers_" + std::to_string(workers);
    EmitBenchJson(bench, prefix + "_wall_ms", best_ms);
    if (workers > 1) {
      EmitBenchJson(bench, prefix + "_speedup", speedup);
      EmitBenchJson(bench, prefix + "_verdicts_agree", agree ? 1 : 0);
    }
  }
  std::printf("== Suite scheduler: default suite (%zu tests), LPT dispatch ==\n%s\n",
              suite.size(), table.Render().c_str());
}

int Main(int argc, char** argv) {
  // bench-smoke runs `bench_reduction 1`; measurement runs use the default 3.
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;

  std::printf("== State-space reduction: none / por / por+symmetry ==\n");
  std::printf("(sequential explorer, both models, best of %d; state counts "
              "are host-independent)\n\n", iters);
  TextTable table({"workload", "mode", "SC states", "RM states", "SC pruned",
                   "RM pruned", "SC ms", "RM ms"});
  BenchWorkload("sb_dmb", ClassicSb(Strength::kDmb), &table, iters);
  BenchWorkload("mp_dmb_acqrel",
                ClassicMp(Strength::kDmb, Strength::kAcqRel), &table, iters);
  BenchWorkload("iriw_dmb", ClassicIriw(Strength::kDmb), &table, iters);
  BenchWorkload("private_work", PrivateWorkSharedCounter(), &table, iters);
  BenchWorkload("ticket_lock", Example2VmBooting(true), &table, iters);
  std::printf("%s\n", table.Render().c_str());

  BenchSuiteScheduler(iters);
  return 0;
}

}  // namespace
}  // namespace vrm

int main(int argc, char** argv) { return vrm::Main(argc, argv); }
