// Quickstart: build a tiny concurrent program, explore it on both hardware
// models, and watch the relaxed behaviour appear — including a Figure-3-style
// promise-list rendering of one relaxed execution of the paper's Example 1.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "src/arch/builder.h"
#include "src/engine/verify_kernel.h"
#include "src/litmus/litmus.h"
#include "src/litmus/paper_examples.h"
#include "src/model/random_walk.h"
#include "src/model/trace.h"
#include "src/sekvm/tinyarm_primitives.h"

namespace vrm {
namespace {

int Main() {
  // ---------------------------------------------------------------- step 1 --
  // Write Example 1 (Section 1) with the program builder:
  //   CPU1: r0 := [x]; [y] := 1       CPU2: r1 := [y]; [x] := r1
  std::printf("Step 1: build the program\n\n");
  const LitmusTest test = Example1OutOfOrderWrite(/*fixed=*/false);
  for (int tid = 0; tid < test.program.num_threads(); ++tid) {
    std::printf("  CPU %d:\n", tid + 1);
    for (const Inst& inst : test.program.threads[tid].code) {
      std::printf("    %s\n", ToString(inst).c_str());
    }
  }

  // ---------------------------------------------------------------- step 2 --
  std::printf("\nStep 2: explore it exhaustively on both hardware models\n\n");
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  std::printf("%s\n", CompareModels(test, rm, sc).c_str());

  // ---------------------------------------------------------------- step 3 --
  // Sample relaxed executions until one exhibits the r0 = r1 = 1 outcome, then
  // print its event trace: the promise step is exactly Figure 3's "(b) fulfils
  // a promise that (a) already read from".
  std::printf("Step 3: one relaxed execution, promise by promise (Figure 3)\n\n");
  PromisingMachine machine(test.program, test.config);
  for (uint64_t seed = 1; seed < 5000; ++seed) {
    const RandomWalkResult walk = RandomWalk(machine, seed, /*promise_bias=*/0.7);
    if (!walk.completed || walk.outcome.regs[0] != 1 || walk.outcome.regs[1] != 1) {
      continue;
    }
    std::printf("%s", RenderTrace(test.program, walk.trace).c_str());
    std::printf("  outcome: %s\n", walk.outcome.ToString(test.program).c_str());
    break;
  }

  // ---------------------------------------------------------------- step 4 --
  std::printf("\nStep 4: insert DMB SY on both CPUs and re-check (the wDRF fix)\n\n");
  const LitmusTest fixed = Example1OutOfOrderWrite(/*fixed=*/true);
  const ExploreResult sc_fixed = RunSc(fixed);
  const ExploreResult rm_fixed = RunPromising(fixed);
  std::printf("%s", CompareModels(fixed, rm_fixed, sc_fixed).c_str());

  // ---------------------------------------------------------------- step 5 --
  // The one-stop check: VerifyKernel runs a single Promising walk (all wDRF
  // condition monitors attached as engine passes) plus a single SC walk and
  // reports refinement, the six conditions, and the txn-PT cases together.
  std::printf("\nStep 5: fused verification of the Figure-7 ticket lock\n\n");
  const KernelVerification verification = VerifyKernel(GenVmidKernelSpec(true));
  std::printf("%s", verification.Describe().c_str());

  // ---------------------------------------------------------------- step 6 --
  // The same verification under a resource budget: a ~25ms wall-clock
  // deadline spanning both walks, with heartbeat telemetry streamed to any
  // sink (events are single JSON lines without a trailing newline — the
  // caller picks the framing). The ticket lock finishes well inside 25ms on
  // most machines, so expect an exhaustive verdict here; shrink the deadline
  // and the same call returns a well-formed [bounded-*] partial result whose
  // stats carry the stop cause.
  std::printf("\nStep 6: the same verification, governed (25ms budget)\n\n");
  GovernanceOptions governance;
  governance.budget.deadline_seconds = 0.025;
  governance.telemetry.interval_seconds = 0.005;
  governance.telemetry.run_name = "quickstart_ticket_lock";
  governance.telemetry.sink = [](const std::string& event) {
    std::printf("  telemetry> %s\n", event.c_str());
  };
  const KernelVerification governed =
      VerifyKernel(GenVmidKernelSpec(true), governance);
  std::printf("  RM %s\n  SC %s\n",
              governed.refinement.rm.stats.Describe().c_str(),
              governed.refinement.sc.stats.Describe().c_str());
  return verification.AllHold() ? 0 : 1;
}

}  // namespace
}  // namespace vrm

int main() { return vrm::Main(); }
