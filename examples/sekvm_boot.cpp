// End-to-end SeKVM session: boot KCore, let (untrusted) KServ create and run
// VMs, watch it try to break isolation, audit the security invariants, run the
// wDRF condition checkers over KCore's primitives, and sweep the Section 5.6
// version matrix.
//
//   ./build/examples/sekvm_boot

#include <cstdio>

#include "src/engine/verify_kernel.h"
#include "src/sekvm/invariants.h"
#include "src/sekvm/kserv.h"
#include "src/sekvm/kvm_versions.h"
#include "src/sekvm/tinyarm_primitives.h"

namespace vrm {
namespace {

int Main() {
  // ------------------------------------------------------------------ boot --
  KCoreConfig config;
  config.total_pages = 1024;
  config.kcore_pool_start = 8;
  config.kcore_pool_pages = 256;
  PhysMemory mem(config.total_pages);
  KCore kcore(&mem, config);
  KServ kserv(&kcore, &mem);
  std::printf("Booting KCore: %s\n", ToString(kcore.Boot()));
  std::printf("  EL2 linear map built, stage 2 enabled, %d SMMU units\n\n",
              kcore.smmu()->num_units());

  // ------------------------------------------------------------- VM launch --
  const auto vm_a = kserv.CreateAndBootVm(/*vcpus=*/2, /*image_pages=*/4, 0xa11ce);
  const auto vm_b = kserv.CreateAndBootVm(/*vcpus=*/2, /*image_pages=*/3, 0xb0b);
  std::printf("Launched VM%u and VM%u (images SHA-512 authenticated)\n", *vm_a, *vm_b);
  std::printf("  VM%u image digest: %.32s...\n", *vm_a,
              ToHex(*kcore.vm_verified_hash(*vm_a)).c_str());
  for (int round = 0; round < 3; ++round) {
    kserv.RunVmOnce(*vm_a);
    kserv.RunVmOnce(*vm_b);
  }
  std::printf("  ran both SMP VMs for 3 rounds; vCPU0 of VM%u executed %llu quanta\n\n",
              *vm_a, (unsigned long long)kcore.vcpu(*vm_a, 0)->runs);

  // ------------------------------------------------------- KServ goes rogue --
  std::printf("KServ turns adversarial:\n");
  std::printf("  map KCore page into own stage 2 ........ %s\n",
              ToString(kserv.TryMapKCorePage()));
  std::printf("  map VM%u's image page ................... %s\n", *vm_a,
              ToString(kserv.TryMapVmPage(*vm_a)));
  std::printf("  DMA-map VM%u's page via own SMMU unit ... %s\n", *vm_a,
              ToString(kserv.TrySmmuSteal(0, *vm_a)));
  std::printf("  run an unverified VM .................... %s\n",
              ToString(kserv.TryRunUnverified()));
  std::printf("  boot a VM with a tampered image ......... %s\n\n",
              ToString(kserv.TryBootTamperedVm()));

  const InvariantReport invariants = CheckSecurityInvariants(kcore);
  std::printf("Security invariants after the attack burst: %s\n\n",
              invariants.ToString().c_str());

  std::printf("Teardown: destroying VM%u (pages scrubbed before returning to "
              "KServ): %s\n\n",
              *vm_b, ToString(kcore.DestroyVm(*vm_b)));

  // ----------------------------------- fused verification (Section 5) ------
  // VerifyKernel: one armed Promising walk + one SC walk per primitive, and
  // every verdict — Theorem-2 refinement, the six wDRF conditions, and the
  // txn-PT write-sequence cases — falls out of that single pair of walks.
  std::printf("Fused verification of KCore's primitives (one Promising walk + "
              "one SC walk each):\n\n");
  KernelSpec set_s2pt_spec = GenVmidKernelSpec(true);
  set_s2pt_spec.program.name = "set_s2pt write sequences (over gen_vmid)";
  set_s2pt_spec.txn_cases = {SetS2ptWriteSequence(2), SetS2ptWriteSequence(3)};
  // clear_s2pt deliberately races a VM's MMU walk against the unmap — the VM
  // side is outside the kernel's wDRF discipline (DRF-KERNEL is not even
  // armed), so Theorem 2's conclusion is not expected for it; only the
  // SEQUENTIAL-TLB-INVALIDATION condition is. Every other primitive must pass
  // the whole fused report.
  struct Entry {
    const char* name;
    KernelSpec spec;
    bool expect_refines;
  };
  bool primitives_ok = true;
  for (const Entry& entry :
       {Entry{"gen_vmid (Figure 7 lock)", GenVmidKernelSpec(true), true},
        Entry{"vCPU context protocol", VcpuContextKernelSpec(true), true},
        Entry{"clear_s2pt (+DSB/TLBI)", ClearS2ptKernelSpec(true), false},
        Entry{"remap_pfn / set_el2_pt", RemapPfnKernelSpec(true), true},
        Entry{"set_s2pt {2,3}-level txn cases", set_s2pt_spec, true}}) {
    const KernelVerification verification = VerifyKernel(entry.spec);
    std::printf("--- %s ---\n%s", entry.name, verification.Describe().c_str());
    if (entry.expect_refines) {
      primitives_ok &= verification.AllHold();
    } else {
      std::printf("(racy-by-design VM access: refinement verdict informational, "
                  "wDRF conditions are the check)\n");
      primitives_ok &= verification.wdrf.AllHold();
    }
    std::printf("\n");
  }

  // ------------------------------------------------- Section 5.6 the matrix --
  std::printf("\nVersion matrix (Section 5.6): ");
  bool all_ok = true;
  int configs = 0;
  for (const VersionCheckResult& result : VerifyVersionMatrix()) {
    all_ok &= result.AllOk();
    ++configs;
  }
  std::printf("%d configurations across Linux 4.18-5.5 x {3,4}-level stage 2: %s\n",
              configs, all_ok ? "all pass" : "FAILURES");
  return (all_ok && primitives_ok) ? 0 : 1;
}

}  // namespace
}  // namespace vrm

int main() { return vrm::Main(); }
