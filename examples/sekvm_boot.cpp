// End-to-end SeKVM session: boot KCore, let (untrusted) KServ create and run
// VMs, watch it try to break isolation, audit the security invariants, run the
// wDRF condition checkers over KCore's primitives, and sweep the Section 5.6
// version matrix.
//
//   ./build/examples/sekvm_boot

#include <cstdio>

#include "src/sekvm/invariants.h"
#include "src/sekvm/kserv.h"
#include "src/sekvm/kvm_versions.h"
#include "src/sekvm/tinyarm_primitives.h"
#include "src/vrm/txn_pt_checker.h"

namespace vrm {
namespace {

int Main() {
  // ------------------------------------------------------------------ boot --
  KCoreConfig config;
  config.total_pages = 1024;
  config.kcore_pool_start = 8;
  config.kcore_pool_pages = 256;
  PhysMemory mem(config.total_pages);
  KCore kcore(&mem, config);
  KServ kserv(&kcore, &mem);
  std::printf("Booting KCore: %s\n", ToString(kcore.Boot()));
  std::printf("  EL2 linear map built, stage 2 enabled, %d SMMU units\n\n",
              kcore.smmu()->num_units());

  // ------------------------------------------------------------- VM launch --
  const auto vm_a = kserv.CreateAndBootVm(/*vcpus=*/2, /*image_pages=*/4, 0xa11ce);
  const auto vm_b = kserv.CreateAndBootVm(/*vcpus=*/2, /*image_pages=*/3, 0xb0b);
  std::printf("Launched VM%u and VM%u (images SHA-512 authenticated)\n", *vm_a, *vm_b);
  std::printf("  VM%u image digest: %.32s...\n", *vm_a,
              ToHex(*kcore.vm_verified_hash(*vm_a)).c_str());
  for (int round = 0; round < 3; ++round) {
    kserv.RunVmOnce(*vm_a);
    kserv.RunVmOnce(*vm_b);
  }
  std::printf("  ran both SMP VMs for 3 rounds; vCPU0 of VM%u executed %llu quanta\n\n",
              *vm_a, (unsigned long long)kcore.vcpu(*vm_a, 0)->runs);

  // ------------------------------------------------------- KServ goes rogue --
  std::printf("KServ turns adversarial:\n");
  std::printf("  map KCore page into own stage 2 ........ %s\n",
              ToString(kserv.TryMapKCorePage()));
  std::printf("  map VM%u's image page ................... %s\n", *vm_a,
              ToString(kserv.TryMapVmPage(*vm_a)));
  std::printf("  DMA-map VM%u's page via own SMMU unit ... %s\n", *vm_a,
              ToString(kserv.TrySmmuSteal(0, *vm_a)));
  std::printf("  run an unverified VM .................... %s\n",
              ToString(kserv.TryRunUnverified()));
  std::printf("  boot a VM with a tampered image ......... %s\n\n",
              ToString(kserv.TryBootTamperedVm()));

  const InvariantReport invariants = CheckSecurityInvariants(kcore);
  std::printf("Security invariants after the attack burst: %s\n\n",
              invariants.ToString().c_str());

  std::printf("Teardown: destroying VM%u (pages scrubbed before returning to "
              "KServ): %s\n\n",
              *vm_b, ToString(kcore.DestroyVm(*vm_b)));

  // ------------------------------------- wDRF condition checks (Section 5) --
  std::printf("wDRF condition checks over KCore's primitives (Promising-Arm "
              "exploration):\n\n");
  for (const auto& [name, spec] :
       {std::pair<const char*, KernelSpec>{"gen_vmid (Figure 7 lock)",
                                           GenVmidKernelSpec(true)},
        {"vCPU context protocol", VcpuContextKernelSpec(true)},
        {"clear_s2pt (+DSB/TLBI)", ClearS2ptKernelSpec(true)},
        {"remap_pfn / set_el2_pt", RemapPfnKernelSpec(true)}}) {
    std::printf("--- %s ---\n%s\n", name, CheckWdrf(spec).ToString().c_str());
  }
  for (int levels : {2, 3}) {
    const PtWriteSequence seq = SetS2ptWriteSequence(levels);
    const TxnCheckResult txn =
        CheckTransactionalWrites(seq.mmu, seq.initial, seq.writes, seq.probe_vpages);
    std::printf("TRANSACTIONAL-PAGE-TABLE, set_s2pt %d-level: %s "
                "(%llu reorderings, %llu walks)\n",
                levels, txn.transactional ? "HOLDS" : "VIOLATED",
                (unsigned long long)txn.permutations_checked,
                (unsigned long long)txn.walks_checked);
  }

  // ------------------------------------------------- Section 5.6 the matrix --
  std::printf("\nVersion matrix (Section 5.6): ");
  bool all_ok = true;
  int configs = 0;
  for (const VersionCheckResult& result : VerifyVersionMatrix()) {
    all_ok &= result.AllOk();
    ++configs;
  }
  std::printf("%d configurations across Linux 4.18-5.5 x {3,4}-level stage 2: %s\n",
              configs, all_ok ? "all pass" : "FAILURES");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace vrm

int main() { return vrm::Main(); }
