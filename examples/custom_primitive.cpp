// Bringing your own kernel primitive to VRM: this walkthrough verifies a new
// synchronization protocol end to end — first the wDRF route (condition checks,
// then the theorem's free refinement), then a primitive that falls *outside*
// wDRF (a seqlock) and must be checked directly on the relaxed model.
//
//   ./build/examples/custom_primitive

#include <cstdio>

#include "src/arch/builder.h"
#include "src/litmus/litmus.h"
#include "src/sekvm/tinyarm_primitives.h"
#include "src/vrm/conditions.h"
#include "src/vrm/refinement.h"

namespace vrm {
namespace {

// A little message mailbox: the producer fills two slots and raises a flag with
// a store-release; the consumer claims the mailbox with a load-acquire. The
// mailbox slots are the shared object (the push/pull region); the flag is the
// synchronization variable (allowed to race, like a lock word).
KernelSpec MailboxSpec(bool verified) {
  constexpr Addr kSlot0 = 0;
  constexpr Addr kSlot1 = 1;
  constexpr Addr kFlag = 2;
  ProgramBuilder pb(verified ? "mailbox" : "mailbox-unverified");
  pb.MemSize(3);
  const int region = pb.AddRegion("mailbox", {kSlot0, kSlot1});

  auto& producer = pb.NewThread();
  producer.Dmb(BarrierKind::kSy);  // boot barrier: the producer owns the mailbox
  producer.Pull(region);
  producer.StoreImm(kSlot0, 11, 2);
  producer.StoreImm(kSlot1, 22, 3);
  producer.Push(region);
  producer.StoreImm(kFlag, 1, 4, verified ? MemOrder::kRelease : MemOrder::kPlain);

  auto& consumer = pb.NewThread();
  consumer.MovImm(2, 99);
  consumer.MovImm(3, 99);
  consumer.LoadAddr(0, kFlag, verified ? MemOrder::kAcquire : MemOrder::kPlain);
  consumer.Cbz(0, "empty");
  consumer.Pull(region);
  consumer.LoadAddr(2, kSlot0);
  consumer.LoadAddr(3, kSlot1);
  consumer.Label("empty");
  consumer.Halt();

  pb.ObserveReg(1, 0).ObserveReg(1, 2).ObserveReg(1, 3);
  KernelSpec spec;
  spec.program = pb.Build();
  return spec;
}

int Main() {
  std::printf("Step 1: describe the primitive as a KernelSpec and run the six\n"
              "condition checkers over every bounded Promising-Arm execution.\n\n");
  for (bool verified : {true, false}) {
    KernelSpec spec = MailboxSpec(verified);
    const WdrfReport report = CheckWdrf(spec);
    std::printf("--- %s ---\n%s\n", spec.program.name.c_str(),
                report.ToString().c_str());
  }

  std::printf("Step 2: the theorem's payoff — the wDRF variant refines SC for\n"
              "free; the plain variant hands the consumer a torn mailbox.\n\n");
  for (bool verified : {true, false}) {
    KernelSpec spec = MailboxSpec(verified);
    LitmusTest test{std::move(spec.program), spec.base_config, ""};
    const RefinementResult result = CheckRefinement(test);
    std::printf("%s: %s", test.program.name.c_str(),
                result.Describe(test.program).c_str());
    const auto torn = [](const Outcome& o) {
      return o.regs[0] == 1 && (o.regs[1] != 11 || o.regs[2] != 22);
    };
    std::printf("  torn mailbox observable on RM: %s\n\n",
                AnyOutcome(result.rm, torn) ? "YES" : "no");
  }

  std::printf("Step 3: a primitive outside wDRF — the seqlock races readers\n"
              "against the writer by design, so DRF-KERNEL fails and VRM's route\n"
              "is unavailable; it must be checked directly on the relaxed model\n"
              "(Section 3: the conditions are sufficient, not necessary).\n\n");
  {
    KernelSpec spec = SeqlockKernelSpec(/*verified=*/true);
    const WdrfReport report = CheckWdrf(spec);
    std::printf("seqlock wDRF verdicts:\n%s\n", report.ToString().c_str());
    LitmusTest test{std::move(spec.program), spec.base_config, ""};
    const ExploreResult rm = RunPromising(test);
    const auto torn = [](const Outcome& o) {
      return o.regs[2] == 1 && o.regs[0] != o.regs[1];
    };
    std::printf("direct RM check: torn snapshot observable: %s (with smp_wmb/rmb)\n",
                AnyOutcome(rm, torn) ? "YES" : "no");
    KernelSpec broken = SeqlockKernelSpec(/*verified=*/false);
    LitmusTest broken_test{std::move(broken.program), broken.base_config, ""};
    const ExploreResult broken_rm = RunPromising(broken_test);
    std::printf("direct RM check: torn snapshot observable: %s (without barriers)\n",
                AnyOutcome(broken_rm, torn) ? "YES" : "no");
  }
  return 0;
}

}  // namespace
}  // namespace vrm

int main() { return vrm::Main(); }
