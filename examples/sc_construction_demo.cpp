// Figure 6 live: sample a relaxed execution of a lock-protected program on the
// push/pull Promising machine, derive the critical-section partial order from
// the pull/push events, linearize it, replay the program on the SC machine in
// that order, and confirm the execution results coincide — Section 4.1's
// SC-execution construction, end to end.
//
//   ./build/examples/sc_construction_demo [seed]

#include <cstdio>
#include <cstdlib>

#include "src/sekvm/tinyarm_primitives.h"
#include "src/vrm/sc_construction.h"

namespace vrm {
namespace {

int Main(int argc, char** argv) {
  const uint64_t base_seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const LockedCounterProgram lc = MakeLockedCounter(/*rounds=*/2, /*verified=*/true);
  std::printf("Program: 2 CPUs, each incrementing a lock-protected counter twice\n"
              "(ticket lock with ldar/stlr; pull/push ghosts mark the critical "
              "sections).\n\n");

  int shown = 0;
  for (uint64_t seed = base_seed; shown < 3 && seed < base_seed + 500; ++seed) {
    PromisingMachine machine(lc.program, lc.config);
    const RandomWalkResult walk = RandomWalk(machine, seed);
    if (!walk.completed) {
      continue;
    }
    ++shown;
    std::printf("=== sampled RM execution (seed %llu) ===\n",
                (unsigned long long)seed);
    // Show the promise-order of the pull/push events (the promise list of
    // Section 4.1) plus the critical sections' data accesses.
    for (size_t pos = 0; pos < walk.trace.size(); ++pos) {
      const StepInfo& step = walk.trace[pos];
      if (step.op == Op::kPull) {
        std::printf("  @%-3zu CPU %d pull  (enters critical section)\n", pos,
                    step.tid + 1);
      } else if (step.op == Op::kPush) {
        std::printf("  @%-3zu CPU %d push  (exits critical section)\n", pos,
                    step.tid + 1);
      } else if (step.is_promise) {
        std::printf("  @%-3zu CPU %d promises [%u] := %llu\n", pos, step.tid + 1,
                    step.loc, (unsigned long long)step.val);
      } else if ((step.is_write || step.is_read) && step.loc == lc.counter_cell) {
        std::printf("  @%-3zu CPU %d %s counter %s %llu\n", pos, step.tid + 1,
                    step.is_write ? "writes" : "reads ",
                    step.is_write ? ":=" : "->", (unsigned long long)step.val);
      }
    }

    const ScConstructionResult result =
        ReplayFromWalk(lc.program, lc.config, walk);
    std::printf("  partial order (critical-section instances, linearized):\n   ");
    for (const CsInstance& instance : result.instances) {
      std::printf(" CPU%d[@%zu..@%zu]", instance.tid + 1, instance.pull_pos,
                  instance.push_pos);
    }
    std::printf("\n  SC replay in that order: %s\n",
                result.replay_completed ? "completed" : "stalled");
    std::printf("  RM result: %s\n  SC result: %s\n  execution results %s\n\n",
                result.rm_outcome.ToString(lc.program).c_str(),
                result.sc_outcome.ToString(lc.program).c_str(),
                result.results_match ? "MATCH (Theorem 2's conclusion)"
                                     : "DIFFER (construction failed!)");
    if (!result.results_match) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace vrm

int main(int argc, char** argv) { return vrm::Main(argc, argv); }
