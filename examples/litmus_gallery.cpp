// Gallery of the paper's Examples 1-7 (Section 2): each buggy program is
// explored on the SC and Promising-Arm models side by side, showing the relaxed
// behaviour the paper describes, then the wDRF-respecting variant where one
// exists.
//
//   ./build/examples/litmus_gallery

#include <cstdio>

#include "src/litmus/litmus.h"
#include "src/litmus/paper_examples.h"

namespace vrm {
namespace {

void Show(const LitmusTest& test) {
  const ExploreResult sc = RunSc(test);
  const ExploreResult rm = RunPromising(test);
  std::printf("%s\n", CompareModels(test, rm, sc).c_str());
}

int Main() {
  std::printf("======== Example 1: out-of-order write ========\n");
  Show(Example1OutOfOrderWrite(false));
  Show(Example1OutOfOrderWrite(true));

  std::printf("======== Example 2: VM booting (gen_vmid under a ticket lock) ====\n");
  std::printf("(the unbarriered exploration takes ~20s on one core)\n");
  Show(Example2VmBooting(false));
  Show(Example2VmBooting(true));

  std::printf("======== Example 3: VM context switch ========\n");
  Show(Example3VmContextSwitch(false));
  Show(Example3VmContextSwitch(true));

  std::printf("======== Example 4: out-of-order page table reads ========\n");
  Show(Example4PageTableReads());

  std::printf("======== Example 5: out-of-order page table writes ========\n");
  Show(Example5PageTableWrites(false));
  Show(Example5PageTableWrites(true));

  std::printf("======== Example 6: page table and TLB reads ========\n");
  Show(Example6TlbInvalidation(false));
  Show(Example6TlbInvalidation(true));

  std::printf("======== Example 7: user -> kernel information flow ========\n");
  Show(Example7UserKernelFlow(false));
  return 0;
}

}  // namespace
}  // namespace vrm

int main() { return vrm::Main(); }
